package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestHULAFourByFourFabric runs HULA on a 4-ToR x 4-spine fabric with
// all-to-all traffic: every ToR must learn a best hop toward every other
// ToR and all offered traffic must be delivered.
func TestHULAFourByFourFabric(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const nTor, nSpine = 4, 4
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	var tors []*core.Switch
	var balancers []*HULA
	uplinks := make([]int, nSpine)
	for j := range uplinks {
		uplinks[j] = 1 + j
	}
	for i := 0; i < nTor; i++ {
		sw := core.New(core.Config{Name: "tor", Ports: 1 + nSpine}, core.EventDriven(), sched)
		h, prog := NewHULA(HULAConfig{
			TorID: uint16(i), ProbePeriod: 200 * sim.Microsecond,
			UplinkPorts: uplinks, HostPort: 0, Tors: nTor,
		})
		sw.MustLoad(prog)
		net.AddSwitch(sw)
		tors = append(tors, sw)
		balancers = append(balancers, h)
	}
	var spines []*core.Switch
	var relays []*HULA
	for j := 0; j < nSpine; j++ {
		sw := core.New(core.Config{Name: "spine", Ports: nTor}, core.EventDriven(), sched)
		h, prog := SpineProbeRelay(nTor, nTor, func(tor int) int { return tor })
		sw.MustLoad(prog)
		net.AddSwitch(sw)
		spines = append(spines, sw)
		relays = append(relays, h)
	}
	net.ConnectLeafSpine(tors, spines, sim.Microsecond)

	var hosts []*netsim.Host
	for i := 0; i < nTor; i++ {
		h := net.NewHost("h", packet.IP4(10, byte(i), 0, 2))
		net.Attach(h, tors[i], 0, 0)
		hosts = append(hosts, h)
	}
	refresh := 200 * sim.Microsecond
	for i, h := range balancers {
		if err := h.Attach(tors[i], refresh); err != nil {
			t.Fatal(err)
		}
	}
	for j, h := range relays {
		if err := h.AttachSpine(spines[j], refresh); err != nil {
			t.Fatal(err)
		}
	}

	// All-to-all: each host sends one flow to every other ToR's host.
	rng := sim.NewRNG(17)
	var gens []*workload.Gen
	for i := 0; i < nTor; i++ {
		for d := 0; d < nTor; d++ {
			if d == i {
				continue
			}
			fl := packet.Flow{
				Src: packet.IP4(10, byte(i), 0, 2), Dst: packet.IP4(10, byte(d), 0, 5),
				SrcPort: uint16(1000 + i*10 + d), DstPort: 80, Proto: packet.ProtoUDP,
			}
			src := hosts[i]
			g := workload.NewGen(sched, rng.Split(), func(data []byte) { src.Send(data) })
			g.StartCBR(workload.CBRConfig{
				Flow: fl, Size: workload.FixedSize(700), Rate: 400 * sim.Mbps,
				Until: 20 * sim.Millisecond,
			})
			gens = append(gens, g)
		}
	}
	sched.Run(30 * sim.Millisecond)

	var offered, delivered uint64
	for _, g := range gens {
		offered += g.SentPackets
	}
	for _, h := range hosts {
		delivered += h.RxPackets
	}
	if delivered < offered*99/100 {
		t.Errorf("delivered %d of %d", delivered, offered)
	}
	for i, h := range balancers {
		for d := 0; d < nTor; d++ {
			if d == i {
				continue
			}
			if hop, _ := h.BestHop(d); hop < 1 || hop > nSpine {
				t.Errorf("tor%d has no best hop toward tor%d (hop=%d)", i, d, hop)
			}
		}
	}
}

// TestSwitchSoakConservation runs a single switch under mixed load with
// every event source active for a long stretch and checks the global
// invariants: packet conservation (rx = tx + buffered + dropped) and
// register drain to the exact logical value after quiescing.
func TestSwitchSoakConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 128 << 10}, core.EventDriven(), sched)
	prog := pisa.NewProgram("soak")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		_ = occ.Read(ctx, uint32(ctx.Pkt.InPort))
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.TimerExpiration, func(*pisa.Context) {})
	sw.MustLoad(prog)
	if err := sw.ConfigureTimer(0, 50*sim.Microsecond); err != nil {
		t.Fatal(err)
	}

	const horizon = 200 * sim.Millisecond
	rng := sim.NewRNG(23)
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fs := workload.NewFlowSet(50, 1.0, packet.IP4(10, byte(port), 0, 0))
		g.StartPoisson(workload.PoissonConfig{
			Flows: fs, MeanGap: 2 * sim.Microsecond, Until: horizon,
		})
	}
	sched.Run(horizon + 5*sim.Millisecond) // quiesce

	st := sw.Stats()
	enq, deq, tmDrops, _ := sw.TM().Stats()
	if st.RxPackets == 0 || st.TxPackets == 0 {
		t.Fatal("soak produced no traffic")
	}
	// Conservation: everything received was transmitted, dropped by the
	// pipeline, or dropped by the TM (nothing still buffered after the
	// quiesce window).
	accounted := st.TxPackets + st.PipelineDrops + tmDrops
	if accounted != st.RxPackets {
		t.Errorf("conservation violated: rx=%d tx=%d pipeDrop=%d tmDrop=%d (accounted %d)",
			st.RxPackets, st.TxPackets, st.PipelineDrops, tmDrops, accounted)
	}
	if enq != deq {
		t.Errorf("TM enq=%d != deq=%d after quiesce", enq, deq)
	}
	// The occupancy register must have drained to exactly zero
	// everywhere: every enqueue matched by a dequeue, every delta
	// applied.
	for i := uint32(0); i < 64; i++ {
		if v := occ.True(i); v != 0 {
			t.Errorf("slot %d: residual true occupancy %d", i, v)
		}
		if v := occ.Stale(i); v != 0 {
			t.Errorf("slot %d: residual stale occupancy %d", i, v)
		}
	}
	if occ.Backlog() != 0 || occ.PendingAbs() != 0 {
		t.Errorf("undrained aggregation state after quiesce: backlog=%d pending=%d",
			occ.Backlog(), occ.PendingAbs())
	}
	m, conflicts := occ.Metrics()
	if m.Dropped != 0 {
		t.Errorf("aggregation dropped %d updates", m.Dropped)
	}
	_ = conflicts // packet thread owns the port; conflicts are expected to be 0 but not an invariant
}
