package apps

import (
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// ECNMarkConfig parameterizes multi-bit congestion marking (paper §3:
// "variants of ECN marking, with packets carrying multiple bits rather
// than just one, to communicate queue occupancy along the path, or just
// the maximum queue occupancy at the bottleneck").
type ECNMarkConfig struct {
	// EgressPort forwards data traffic.
	EgressPort int
	// QuantumBytes maps occupancy to the mark value: mark =
	// min(occupancy/QuantumBytes, 255). A receiver reads the mark as a
	// congestion level.
	QuantumBytes int
}

// ECNMark stamps each departing packet's TOS byte with the *maximum* of
// its current value and this switch's quantized egress-queue occupancy,
// so a packet crossing several switches arrives carrying the bottleneck's
// occupancy. Occupancy comes from enqueue/dequeue events.
type ECNMark struct {
	cfg ECNMarkConfig
	occ *pisa.SharedRegister

	Marked uint64
}

// NewECNMark builds the marker and its program.
func NewECNMark(cfg ECNMarkConfig) (*ECNMark, *pisa.Program) {
	if cfg.QuantumBytes <= 0 {
		cfg.QuantumBytes = 4096
	}
	m := &ECNMark{cfg: cfg}
	p := pisa.NewProgram("ecn-multibit")
	m.occ = p.AddRegister(pisa.NewAggregatedRegister("occ", 8,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.Has(packet.LayerIPv4) {
			return
		}
		// Read the egress queue's occupancy and fold it into the mark.
		occ := m.occ.Read(ctx, uint32(cfg.EgressPort))
		level := occ / uint64(cfg.QuantumBytes)
		if level > 255 {
			level = 255
		}
		if uint8(level) > ctx.TOS() {
			ctx.SetTOS(uint8(level))
			m.Marked++
		}
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		m.occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		m.occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	return m, p
}

// NDPConfig parameterizes NDP-style priority forwarding (paper §3:
// congestion signals "used in the ingress pipeline to make priority
// forwarding decisions, as in NDP").
type NDPConfig struct {
	EgressPort int
	// TrimAboveBytes: when the egress occupancy exceeds this, the
	// payload is trimmed and the header-only packet jumps to the
	// priority queue instead of being dropped.
	TrimAboveBytes int
}

// NDP implements the receiver-driven transport's switch-side trick: under
// congestion, instead of dropping, trim packets to their headers and
// forward the headers at high priority so receivers learn what was sent.
// Queue 0 is the strict-priority header queue; queue 1 carries payloads.
type NDP struct {
	cfg NDPConfig
	occ *pisa.SharedRegister

	Trimmed   uint64
	FullSized uint64
}

// NewNDP builds the trimmer and its program. Load it on a switch
// configured with 2 queues per port and strict-priority scheduling.
func NewNDP(cfg NDPConfig) (*NDP, *pisa.Program) {
	if cfg.TrimAboveBytes <= 0 {
		cfg.TrimAboveBytes = 30000
	}
	n := &NDP{cfg: cfg}
	p := pisa.NewProgram("ndp-trim")
	n.occ = p.AddRegister(pisa.NewAggregatedRegister("occ", 8,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.Has(packet.LayerIPv4) {
			ctx.Queue = 0
			return
		}
		occ := n.occ.Read(ctx, uint32(cfg.EgressPort))
		if occ > uint64(cfg.TrimAboveBytes) && ctx.Trim() {
			n.Trimmed++
			ctx.Queue = 0 // header queue: strict priority
			return
		}
		n.FullSized++
		ctx.Queue = 1
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		// Track only the payload queue: header packets are tiny and the
		// trimming decision concerns payload backlog.
		if ctx.Ev.Queue == 1 {
			n.occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
		}
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		if ctx.Ev.Queue == 1 {
			n.occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
		}
	})
	return n, p
}
