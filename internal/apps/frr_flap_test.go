package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// TestFRRSurvivesFlapStorm drives fast re-route through 100 deterministic
// link flaps from a faults schedule: every failure converges within one
// LinkStatusChange (packets-lost-per-flap stays at in-flight scale, far
// below the down-time worth of traffic), the router returns to the
// primary after each repair, the failover counters match the storm
// exactly, and the whole run passes the conservation audit.
func TestFRRSurvivesFlapStorm(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	frrSw := core.New(core.Config{Name: "frr"}, core.EventDriven(), sched)
	dstIdx := int(uint32(flowN(0).Dst) >> 16)
	r, prog := NewFRR(FRRConfig{
		Primary: map[int]int{dstIdx: 1},
		Backup:  map[int]int{dstIdx: 2},
	})
	frrSw.MustLoad(prog)

	sink := core.New(core.Config{Name: "sink"}, core.Baseline(), sched)
	sinkProg := pisa.NewProgram("to-dst")
	sinkProg.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 2 })
	sink.MustLoad(sinkProg)

	net.AddSwitch(frrSw)
	net.AddSwitch(sink)
	src := net.NewHost("src", flowN(7).Src)
	dst := net.NewHost("dst", flowN(7).Dst)
	net.Attach(src, frrSw, 0, 0)                       // link 0
	net.Connect(frrSw, 1, sink, 0, 500*sim.Nanosecond) // link 1: primary
	net.Connect(frrSw, 2, sink, 1, 500*sim.Nanosecond) // link 2: backup
	net.Attach(dst, sink, 2, 0)                        // link 3

	// 100 flaps on the primary, 50us down every 200us: a 20ms storm.
	const flaps = 100
	sch := &faults.Schedule{Seed: 11, Specs: []faults.Spec{{
		Kind: faults.FlapStorm, Link: 1, Start: sim.Millisecond,
		Period: 200 * sim.Microsecond, Down: 50 * sim.Microsecond, Count: flaps,
	}}}
	eng := faults.MustApply(net, sch, faults.Options{})

	// CBR source: one packet every 10us for 25ms — 2500 packets, ~5 of
	// which would die per flap if failover took the whole down-time.
	const sent = 2500
	for i := 0; i < sent; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		sched.At(at, func() { src.Send(frameFor(flowN(7), 100)) })
	}
	sched.Run(30 * sim.Millisecond)

	if got := eng.Stats(0).Flaps; got != flaps {
		t.Fatalf("storm ran %d flaps, want %d", got, flaps)
	}
	if r.Failovers != flaps {
		t.Errorf("failovers = %d, want exactly %d (one per flap)", r.Failovers, flaps)
	}
	// Every received packet was routed one way or the other.
	st := frrSw.Stats()
	if r.RoutedPrimary+r.RoutedBackup != st.RxPackets {
		t.Errorf("routed %d+%d != rx %d", r.RoutedPrimary, r.RoutedBackup, st.RxPackets)
	}
	// The storm keeps the primary down 25%% of the time, so a correct
	// re-router sends a visible share — but not the majority — via backup.
	if r.RoutedBackup == 0 || r.RoutedBackup >= r.RoutedPrimary {
		t.Errorf("primary=%d backup=%d, want backup in (0, primary)", r.RoutedPrimary, r.RoutedBackup)
	}
	// Convergence within one event: losses stay at in-flight scale
	// (frames already on the failed link or routed before the event
	// drained), nowhere near the 5-per-flap a slow path would lose.
	if lost := sent - dst.RxPackets; lost > 2*flaps {
		t.Errorf("lost %d packets across %d flaps, want <= %d (one-event convergence)",
			lost, flaps, 2*flaps)
	}
	// After the last repair the router is back on the primary.
	before := r.RoutedPrimary
	src.Send(frameFor(flowN(7), 100))
	sched.Run(31 * sim.Millisecond)
	if r.RoutedPrimary != before+1 {
		t.Errorf("post-storm packet not routed on primary (primary %d -> %d)", before, r.RoutedPrimary)
	}
	if rep := faults.Audit(net); !rep.OK() {
		t.Fatal(rep)
	}
}
