package apps

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// Fat-tree roles for FatTreeRouter.
const (
	FatTreeEdge = iota
	FatTreeAgg
	FatTreeCore
)

// FatTreeConfig places one switch in a k-ary fat tree (Al-Fares et al.)
// using the canonical 10.pod.edge.host addressing plan:
//
//   - k pods, each with k/2 edge and k/2 aggregation switches;
//     (k/2)^2 core switches in k/2 groups of k/2.
//   - Edge e in pod p: ports 0..k/2-1 face hosts (host h at port h,
//     addressed 10.p.e.(2+h)), ports k/2..k-1 face aggs (agg a at port
//     k/2+a).
//   - Agg a in pod p: ports 0..k/2-1 face edges (edge e at port e),
//     ports k/2..k-1 face cores (core a*(k/2)+j at port k/2+j).
//   - Core c: port p faces pod p (via agg c/(k/2)).
type FatTreeConfig struct {
	K    int // pod count; must be even and >= 2
	Role int // FatTreeEdge, FatTreeAgg, or FatTreeCore
	Pod  int // pod index (edge/agg roles)
	Idx  int // edge/agg index within the pod, or global core index
}

// FatTreeRouter builds the static two-level ECMP routing program for one
// fat-tree switch: traffic toward the switch's own subtree routes down
// deterministically by address, everything else hashes up across the
// available uplinks on the flow hash (so a flow stays on one path).
// Unlike HULA it keeps no state at all — the fat-tree scale experiments
// measure the parallel engine, not path adaptivity.
func FatTreeRouter(cfg FatTreeConfig) *pisa.Program {
	if cfg.K < 2 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("apps: fat-tree k=%d must be even and >= 2", cfg.K))
	}
	half := cfg.K / 2
	p := pisa.NewProgram(fmt.Sprintf("fattree-k%d", cfg.K))
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		dst := uint32(ctx.Flow.Dst)
		pod := int(dst>>16) & 0xff
		edge := int(dst>>8) & 0xff
		host := int(dst)&0xff - 2
		switch cfg.Role {
		case FatTreeEdge:
			if pod == cfg.Pod && edge == cfg.Idx {
				if host < 0 || host >= half {
					ctx.Drop()
					return
				}
				ctx.EgressPort = host
				return
			}
			ctx.EgressPort = half + int(ctx.Ev.FlowHash%uint64(half))
		case FatTreeAgg:
			if pod == cfg.Pod {
				if edge < 0 || edge >= half {
					ctx.Drop()
					return
				}
				ctx.EgressPort = edge
				return
			}
			ctx.EgressPort = half + int(ctx.Ev.FlowHash%uint64(half))
		default: // core
			if pod < 0 || pod >= cfg.K {
				ctx.Drop()
				return
			}
			ctx.EgressPort = pod
		}
	})
	return p
}

// FatTreeHostIP returns the canonical address of host h on edge switch e
// in pod p.
func FatTreeHostIP(pod, edge, host int) packet.IP {
	return packet.IP4(10, byte(pod), byte(edge), byte(2+host))
}
