package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestINTTransitChainCollectsPerHopTelemetry(t *testing.T) {
	// Three transit switches in a chain; the second is congested by
	// cross traffic. The sink must see 3 hop records with the middle
	// hop reporting the deep queue.
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	var transits []*INTTransit
	var switches []*core.Switch
	for i := 0; i < 3; i++ {
		tr, prog := NewINTTransit(INTTransitConfig{SwitchID: uint32(i + 1), EgressPort: 1})
		sw := core.New(core.Config{Name: "s", QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
		sw.MustLoad(prog)
		net.AddSwitch(sw)
		transits = append(transits, tr)
		switches = append(switches, sw)
	}
	src := net.NewHost("src", packet.IP4(10, 0, 0, 1))
	sink := net.NewHost("sink", packet.IP4(10, 9, 0, 1))
	net.Attach(src, switches[0], 0, 0)
	net.Connect(switches[0], 1, switches[1], 0, sim.Microsecond)
	net.Connect(switches[1], 1, switches[2], 0, sim.Microsecond)
	net.Attach(sink, switches[2], 1, 0)
	crossA := net.NewHost("crossA", packet.IP4(10, 0, 0, 2))
	crossB := net.NewHost("crossB", packet.IP4(10, 0, 0, 3))
	net.Attach(crossA, switches[1], 2, 0)
	net.Attach(crossB, switches[1], 3, 0)

	type pathObs struct {
		hops      int
		midQueue  uint32
		hopOrder  [3]uint32
		monotonic bool
	}
	var last pathObs
	var got int
	sink.OnRecv = func(data []byte) {
		recs, ok := packet.INTRecords(data)
		if !ok {
			return
		}
		got++
		last.hops = len(recs)
		if len(recs) == 3 {
			for i, r := range recs {
				last.hopOrder[i] = r.SwitchID
			}
			if recs[1].QueueBytes > last.midQueue {
				last.midQueue = recs[1].QueueBytes
			}
			last.monotonic = recs[0].TimestampNS <= recs[1].TimestampNS &&
				recs[1].TimestampNS <= recs[2].TimestampNS
		}
	}

	// Instrumented probe stream + heavy cross traffic into switch 1.
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1),
		SrcPort: 7000, DstPort: packet.INTPort, Proto: packet.ProtoUDP}
	for i := 0; i < 50; i++ {
		at := sim.Time(i) * 200 * sim.Microsecond
		sched.At(at, func() {
			data := packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 200})
			inst, err := packet.INTInstrument(data)
			if err != nil {
				t.Error(err)
				return
			}
			src.Send(inst)
		})
	}
	// Two cross sources oversubscribe switch 1's egress (12G into 10G).
	gxa := workload.NewGen(sched, sim.NewRNG(1), func(d []byte) { crossA.Send(d) })
	gxa.StartCBR(workload.CBRConfig{Flow: flowN(9), Size: workload.FixedSize(1500),
		Rate: 6 * sim.Gbps, Until: 10 * sim.Millisecond})
	gxb := workload.NewGen(sched, sim.NewRNG(2), func(d []byte) { crossB.Send(d) })
	gxb.StartCBR(workload.CBRConfig{Flow: flowN(10), Size: workload.FixedSize(1500),
		Rate: 6 * sim.Gbps, Until: 10 * sim.Millisecond})

	sched.Run(15 * sim.Millisecond)

	if got == 0 {
		t.Fatal("sink received no instrumented packets")
	}
	if last.hops != 3 {
		t.Fatalf("hop records = %d, want 3", last.hops)
	}
	if last.hopOrder != [3]uint32{1, 2, 3} {
		t.Errorf("hop order = %v", last.hopOrder)
	}
	if !last.monotonic {
		t.Error("hop timestamps not monotonic")
	}
	if last.midQueue < 10000 {
		t.Errorf("middle hop peak queue = %d, want congested", last.midQueue)
	}
	if transits[1].Pushed == 0 {
		t.Error("middle switch pushed nothing")
	}
}

func TestPIEHoldsDelayNearTarget(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 1 << 22}, core.EventDriven(), sched)
	pie, prog := NewPIE(PIEConfig{
		EgressPort: 1, TargetDelay: 200 * sim.Microsecond, Update: sim.Millisecond,
	}, sim.NewRNG(4))
	sw.MustLoad(prog)
	if err := pie.Arm(sw); err != nil {
		t.Fatal(err)
	}
	// Sustained 1.4x overload: without AQM the queue (and delay) would
	// grow to the 4MB cap (~3.4ms at 10G).
	rng := sim.NewRNG(5)
	for _, port := range []int{0, 2} {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		g.StartCBR(workload.CBRConfig{Flow: flowN(port + 1), Size: workload.FixedSize(1500),
			Rate: 7 * sim.Gbps, Until: 200 * sim.Millisecond})
	}
	sched.Run(200 * sim.Millisecond)

	if pie.Dropped == 0 {
		t.Fatal("PIE never dropped under sustained overload")
	}
	// Steady-state delay (second half of samples) must sit near the
	// target, far below the uncontrolled 3.4ms.
	p50 := pie.DelaySamples.Percentile(50)
	if p50 > 0.001 {
		t.Errorf("median estimated delay = %.0fus, want near the 200us target", p50*1e6)
	}
	if pie.DropProb() == 0 && pie.Dropped < 100 {
		t.Error("controller inactive")
	}
}

func TestAFDFairDropping(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
	afd, prog := NewAFD(AFDConfig{
		EgressPort: 1, Slots: 512, Interval: sim.Millisecond, TargetBytes: 30000,
	}, sim.NewRNG(6))
	sw.MustLoad(prog)
	if err := afd.Arm(sw); err != nil {
		t.Fatal(err)
	}
	hog := flowN(1)
	mouse := flowN(2)
	hogSlot := hog.Hash() % 512
	mouseSlot := mouse.Hash() % 512
	if hogSlot == mouseSlot {
		t.Fatal("test flows collide; pick different flows")
	}
	var hogTx, mouseTx uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if f, ok := packet.FlowOf(pkt.Data); ok {
			if f.Hash()%512 == hogSlot {
				hogTx++
			} else {
				mouseTx++
			}
		}
	}
	rng := sim.NewRNG(7)
	gh := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	gh.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500),
		Rate: 12 * sim.Gbps, Until: 50 * sim.Millisecond})
	gm := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
	gm.StartCBR(workload.CBRConfig{Flow: mouse, Size: workload.FixedSize(300),
		Rate: 100 * sim.Mbps, Until: 50 * sim.Millisecond})
	sched.Run(55 * sim.Millisecond)

	if afd.Dropped == 0 {
		t.Fatal("AFD never dropped under 1.2x overload")
	}
	mouseDelivery := float64(mouseTx) / float64(gm.SentPackets)
	if mouseDelivery < 0.95 {
		t.Errorf("mouse delivery = %.2f, want ~1 (only the hog should be dropped)", mouseDelivery)
	}
	hogDelivery := float64(hogTx) / float64(gh.SentPackets)
	if hogDelivery > 0.95 {
		t.Errorf("hog delivery = %.2f, want throttled", hogDelivery)
	}
}
