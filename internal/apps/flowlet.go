package apps

import (
	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// FlowletConfig parameterizes CONGA-style flowlet load balancing
// (Table 2 cites CONGA under Load Balancing: congestion-aware balancing
// at flowlet granularity, so packets inside a burst keep their path and
// no intra-flowlet reordering occurs).
type FlowletConfig struct {
	// UplinkPorts are the candidate next hops.
	UplinkPorts []int
	// Gap is the inter-packet gap that opens a new flowlet: bigger than
	// the path-delay difference, so re-routing between flowlets cannot
	// reorder.
	Gap sim.Time
	// Slots sizes the flowlet table.
	Slots int
}

// Flowlet balances flows across uplinks at flowlet granularity, choosing
// the uplink with the least event-derived queue occupancy when a new
// flowlet starts. The flowlet table (last-seen time + assigned port per
// flow slot) is packet-thread state; the occupancy register is shared
// with the enqueue/dequeue event threads — the combination only an
// event-driven architecture provides in the data plane.
type Flowlet struct {
	cfg      FlowletConfig
	occ      *pisa.SharedRegister
	lastSeen []sim.Time
	port     []int8

	// Flowlets counts flowlet starts; Moved counts flowlets that picked
	// a different uplink than their flow's previous one.
	Flowlets uint64
	Moved    uint64
}

// NewFlowlet builds the balancer and its program.
func NewFlowlet(cfg FlowletConfig) (*Flowlet, *pisa.Program) {
	if len(cfg.UplinkPorts) == 0 {
		panic("apps: Flowlet needs uplinks")
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 100 * sim.Microsecond
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 4096
	}
	f := &Flowlet{
		cfg:      cfg,
		lastSeen: make([]sim.Time, cfg.Slots),
		port:     make([]int8, cfg.Slots),
	}
	for i := range f.port {
		f.port[i] = -1
	}
	p := pisa.NewProgram("flowlet")
	f.occ = p.AddRegister(pisa.NewAggregatedRegister("uplinkOcc", 8,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		slot := ctx.Ev.FlowHash % uint64(cfg.Slots)
		now := ctx.Now
		cur := f.port[slot]
		if cur >= 0 && now-f.lastSeen[slot] < cfg.Gap {
			// Same flowlet: stick to the assigned path.
			f.lastSeen[slot] = now
			ctx.EgressPort = int(cur)
			return
		}
		// New flowlet: pick the least-occupied uplink.
		best := cfg.UplinkPorts[0]
		bestOcc := f.occ.Read(ctx, uint32(best))
		for _, port := range cfg.UplinkPorts[1:] {
			if occ := f.occ.Read(ctx, uint32(port)); occ < bestOcc {
				best, bestOcc = port, occ
			}
		}
		f.Flowlets++
		if cur >= 0 && int(cur) != best {
			f.Moved++
		}
		f.port[slot] = int8(best)
		f.lastSeen[slot] = now
		ctx.EgressPort = best
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		f.occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		f.occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	return f, p
}
