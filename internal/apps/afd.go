package apps

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// AFDConfig parameterizes Approximate Fair Dropping (paper §3 lists AFD
// among the AQM algorithms; Pan et al., CCR 2003).
type AFDConfig struct {
	EgressPort int
	// Slots sizes the per-flow arrival-rate table (the shadow buffer's
	// aggregation).
	Slots int
	// Interval is the measurement window (the timer event's period).
	Interval sim.Time
	// TargetBytes is the occupancy setpoint the fair share adapts to.
	TargetBytes int64
}

// AFD drops proportionally to how far a flow's arrival rate exceeds the
// current fair share: per-flow arrival bytes accumulate in a register
// indexed like a shadow buffer; a timer event closes each window,
// derives the fair share from the occupancy error (MIMD on the
// setpoint), and the ingress pipeline drops flow packets with
// probability 1 - fair/arrived.
type AFD struct {
	cfg AFDConfig
	occ *pisa.SharedRegister
	rng *sim.RNG

	// arrivals holds the closing window's per-slot byte counts (the
	// data plane would double-buffer two register arrays; the previous
	// window is read-only to the ingress pipeline).
	arrivals []uint64
	prev     []uint64
	fair     float64

	Dropped, Passed uint64
}

// NewAFD builds the AQM and its program.
func NewAFD(cfg AFDConfig, rng *sim.RNG) (*AFD, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 512
	}
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Millisecond
	}
	if cfg.TargetBytes <= 0 {
		cfg.TargetBytes = 30000
	}
	a := &AFD{
		cfg:      cfg,
		rng:      rng,
		arrivals: make([]uint64, cfg.Slots),
		prev:     make([]uint64, cfg.Slots),
	}
	// Start the fair share at the occupancy setpoint per window; MIMD
	// adapts it from there.
	a.fair = float64(cfg.TargetBytes)
	p := pisa.NewProgram("afd")
	a.occ = p.AddRegister(pisa.NewAggregatedRegister("occ", 1,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.FlowOK {
			return
		}
		slot := ctx.Ev.FlowHash % uint64(cfg.Slots)
		a.arrivals[slot] += uint64(ctx.Pkt.Len())
		arrived := float64(a.prev[slot])
		if arrived > a.fair {
			// Drop with probability 1 - fair/arrived.
			if a.rng.Float64() > a.fair/arrived {
				a.Dropped++
				ctx.Drop()
				return
			}
		}
		a.Passed++
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		a.occ.Add(ctx, 0, int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		a.occ.Add(ctx, 0, -int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		// Close the window: swap buffers and adapt the fair share from
		// the occupancy error (multiplicative increase/decrease).
		a.prev, a.arrivals = a.arrivals, a.prev
		for i := range a.arrivals {
			a.arrivals[i] = 0
		}
		occ := int64(a.occ.Read(ctx, 0))
		switch {
		case occ > a.cfg.TargetBytes*5/4:
			a.fair *= 0.85
		case occ < a.cfg.TargetBytes*3/4:
			a.fair *= 1.3
		}
		if a.fair < 100 {
			a.fair = 100
		}
	})
	return a, p
}

// Arm configures the window timer.
func (a *AFD) Arm(sw *core.Switch) error {
	return sw.ConfigureTimer(0, a.cfg.Interval)
}

// FairShare returns the current per-window fair byte budget.
func (a *AFD) FairShare() float64 { return a.fair }
