package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestFlowletSticksWithinFlowlet(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	f, prog := NewFlowlet(FlowletConfig{
		UplinkPorts: []int{1, 2}, Gap: 100 * sim.Microsecond,
	})
	sw.MustLoad(prog)
	var ports []int
	sw.OnTransmit = func(p int, _ *packet.Packet) { ports = append(ports, p) }

	fl := flowN(1)
	// Burst of 10 packets 1us apart (one flowlet), a 500us pause, then
	// another burst.
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * sim.Microsecond
		sched.At(at, func() { sw.Inject(0, frameFor(fl, 200)) })
	}
	for i := 0; i < 10; i++ {
		at := 600*sim.Microsecond + sim.Time(i)*sim.Microsecond
		sched.At(at, func() { sw.Inject(0, frameFor(fl, 200)) })
	}
	sched.Run(5 * sim.Millisecond)

	if len(ports) != 20 {
		t.Fatalf("tx = %d", len(ports))
	}
	// Within each burst, the path must not change.
	for i := 1; i < 10; i++ {
		if ports[i] != ports[0] {
			t.Fatalf("first flowlet changed path at %d: %v", i, ports[:10])
		}
		if ports[10+i] != ports[10] {
			t.Fatalf("second flowlet changed path at %d: %v", i, ports[10:])
		}
	}
	if f.Flowlets != 2 {
		t.Errorf("flowlets = %d, want 2", f.Flowlets)
	}
}

func TestFlowletSteersAwayFromCongestedUplink(t *testing.T) {
	// Congest one uplink with a hog flow, then start a new flow: its
	// first flowlet must be assigned the other (empty) uplink.
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	sw := core.New(core.Config{Ports: 5, QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
	f, prog := NewFlowlet(FlowletConfig{
		UplinkPorts: []int{1, 2}, Gap: 50 * sim.Microsecond,
	})
	sw.MustLoad(prog)
	net.AddSwitch(sw)
	u1 := net.NewHost("u1", packet.IP4(9, 0, 0, 1))
	u2 := net.NewHost("u2", packet.IP4(9, 0, 0, 2))
	srcH := net.NewHost("src", packet.IP4(9, 0, 0, 3))
	crossH := net.NewHost("cross", packet.IP4(9, 0, 0, 4))
	crossH2 := net.NewHost("cross2", packet.IP4(9, 0, 0, 5))
	net.Attach(u1, sw, 1, 0)
	net.Attach(u2, sw, 2, 0)
	net.Attach(srcH, sw, 0, 0)
	net.Attach(crossH, sw, 3, 0)
	net.Attach(crossH2, sw, 4, 0)

	hog := flowN(7)
	probe := flowN(8)
	hogHash, probeHash := hog.Hash(), probe.Hash()
	hogPort, probePort := -1, -1
	net.TapTransmit(sw, func(port int, data []byte) {
		fl, ok := packet.FlowOf(data)
		if !ok {
			return
		}
		switch fl.Hash() {
		case hogHash:
			hogPort = port
		case probeHash:
			probePort = port
		}
	})

	// The hog flow arrives from two hosts at 12 Gb/s combined,
	// oversubscribing whichever uplink its first flowlet picked (the
	// packets arrive interleaved at well under the flowlet gap, so they
	// stay one flowlet).
	g := workload.NewGen(sched, sim.NewRNG(1), func(d []byte) { crossH.Send(d) })
	g.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500),
		Rate: 6 * sim.Gbps, Until: 10 * sim.Millisecond})
	g2 := workload.NewGen(sched, sim.NewRNG(2), func(d []byte) { crossH2.Send(d) })
	g2.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500),
		Rate: 6 * sim.Gbps, Until: 10 * sim.Millisecond})
	// A new flow starts at 5ms, well into the congestion.
	sched.At(5*sim.Millisecond, func() { srcH.Send(frameFor(probe, 200)) })
	sched.Run(12 * sim.Millisecond)

	if hogPort < 0 || probePort < 0 {
		t.Fatalf("hogPort=%d probePort=%d", hogPort, probePort)
	}
	if probePort == hogPort {
		t.Errorf("new flowlet joined the congested uplink %d", hogPort)
	}
	if f.Flowlets < 2 {
		t.Errorf("flowlets = %d", f.Flowlets)
	}
}
