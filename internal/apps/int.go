package apps

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// INTTransitConfig parameterizes an INT transit switch (paper §3
// Network Monitoring: In-band Network Telemetry).
type INTTransitConfig struct {
	SwitchID   uint32
	EgressPort int
}

// INTTransit forwards traffic and pushes an INT hop record onto every
// instrumented packet: this switch's ID, the egress queue occupancy at
// admission (from enqueue/dequeue events), an estimated queueing latency,
// and the local timestamp. Receivers reconstruct per-hop congestion from
// the record stack — the fine-grain measurement INT provides.
type INTTransit struct {
	cfg INTTransitConfig
	occ *pisa.SharedRegister

	Pushed  uint64
	Skipped uint64 // instrumented packets whose stack was full
}

// NewINTTransit builds the transit program.
func NewINTTransit(cfg INTTransitConfig) (*INTTransit, *pisa.Program) {
	tr := &INTTransit{cfg: cfg}
	p := pisa.NewProgram("int-transit")
	tr.occ = p.AddRegister(pisa.NewAggregatedRegister("occ", 8,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if ctx.Pkt == nil || ctx.Pkt.Empty {
			return
		}
		occ := tr.occ.Read(ctx, uint32(cfg.EgressPort))
		// Estimated queueing latency at 10G: occupancy bytes * 0.8 ns.
		latency := uint32(occ * 8 / 10)
		data, ok := packet.INTPush(ctx.Pkt.Data, packet.INTRecord{
			SwitchID:    cfg.SwitchID,
			QueueBytes:  uint32(occ),
			LatencyNS:   latency,
			TimestampNS: uint64(ctx.Now.Nanoseconds()),
		})
		if ok {
			ctx.Pkt.Data = data
			tr.Pushed++
		} else if _, isINT := packet.INTRecords(ctx.Pkt.Data); isINT {
			tr.Skipped++
		}
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		tr.occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		tr.occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	return tr, p
}

// PIEConfig parameterizes the PIE AQM (paper §3 lists PIE among the AQM
// algorithms event-driven programming enables).
type PIEConfig struct {
	EgressPort int
	// TargetDelay is the queueing-delay setpoint.
	TargetDelay sim.Time
	// Update is the controller period (the timer event's period).
	Update sim.Time
	// Alpha256 and Beta256 are the PI gains in 1/256 units per ms of
	// delay error.
	Alpha256, Beta256 int64
}

// PIE keeps queueing delay near a target with a proportional-integral
// controller: dequeue events measure the departure rate, a timer event
// updates the drop probability from the estimated delay, and the ingress
// pipeline drops probabilistically — all three event kinds the paper's
// Traffic Management row names.
type PIE struct {
	cfg PIEConfig
	occ *pisa.SharedRegister
	rng *sim.RNG

	departedBytes uint64
	drainRate     float64 // bytes per second, EWMA
	lastDelay     float64 // seconds
	prob256       int64

	Dropped, Passed uint64
	// DelaySamples records the estimated delay at each controller tick.
	DelaySamples *sim.Stats
}

// NewPIE builds the AQM and its program.
func NewPIE(cfg PIEConfig, rng *sim.RNG) (*PIE, *pisa.Program) {
	if cfg.TargetDelay <= 0 {
		cfg.TargetDelay = 100 * sim.Microsecond
	}
	if cfg.Update <= 0 {
		cfg.Update = sim.Millisecond
	}
	if cfg.Alpha256 == 0 {
		cfg.Alpha256 = 32
	}
	if cfg.Beta256 == 0 {
		cfg.Beta256 = 320
	}
	pie := &PIE{cfg: cfg, rng: rng, DelaySamples: sim.NewStats()}
	p := pisa.NewProgram("pie")
	pie.occ = p.AddRegister(pisa.NewAggregatedRegister("occ", 1,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.FlowOK {
			return
		}
		if pie.prob256 > 0 && int64(pie.rng.Intn(256)) < pie.prob256 {
			pie.Dropped++
			ctx.Drop()
			return
		}
		pie.Passed++
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		pie.occ.Add(ctx, 0, int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		pie.occ.Add(ctx, 0, -int64(ctx.Ev.PktLen))
		pie.departedBytes += uint64(ctx.Ev.PktLen)
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		interval := cfg.Update.Seconds()
		rate := float64(pie.departedBytes) / interval
		pie.departedBytes = 0
		if pie.drainRate == 0 {
			pie.drainRate = rate
		} else {
			pie.drainRate += (rate - pie.drainRate) / 8
		}
		var delay float64
		if pie.drainRate > 0 {
			delay = float64(pie.occ.Read(ctx, 0)) / pie.drainRate
		}
		pie.DelaySamples.Add(delay)
		target := cfg.TargetDelay.Seconds()
		// PI update, gains scaled per ms of error.
		pie.prob256 += int64(float64(cfg.Alpha256)*(delay-target)*1000) +
			int64(float64(cfg.Beta256)*(delay-pie.lastDelay)*1000)
		pie.lastDelay = delay
		if pie.prob256 < 0 {
			pie.prob256 = 0
		}
		if pie.prob256 > 255 {
			pie.prob256 = 255
		}
	})
	return pie, p
}

// Arm configures the controller timer.
func (pie *PIE) Arm(sw *core.Switch) error {
	return sw.ConfigureTimer(0, pie.cfg.Update)
}

// DropProb returns the current drop probability in [0,1].
func (pie *PIE) DropProb() float64 { return float64(pie.prob256) / 256 }
