package apps

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// NetCache-style in-network key-value cache (paper §3, In-Network
// Computing). The data plane caches hot items and answers reads without
// reaching the storage server; timer events implement the two
// capabilities the paper highlights: an approximate-LRU replacement
// policy (periodic aging of access counters) and fast statistics clearing
// so the cache adapts to workload changes.
//
// Wire format: key-value requests ride UDP on CachePort. The payload is
// "op(1) key(8) value(8)": op 1 = GET, 2 = PUT, 3 = REPLY.

// Cache protocol constants.
const (
	CachePort  = 9000
	CacheGet   = 1
	CachePut   = 2
	CacheReply = 3
)

// CacheConfig parameterizes the cache.
type CacheConfig struct {
	// Ways is the number of cache slots.
	Ways int
	// ServerPort is the switch port toward the storage server.
	ServerPort int
	// ClientPort is the switch port toward clients.
	ClientPort int
	// AgeShift right-shifts every slot's hit counter on each aging tick
	// (1 = halve), implementing approximate LRU.
	AgeShift uint
	// AdmitThreshold is the access count at which a key is cached.
	AdmitThreshold uint64
}

// cacheSlot is one cached item.
type cacheSlot struct {
	key   uint64
	value uint64
	valid bool
	hits  uint64
}

// Cache is the in-network cache application.
type Cache struct {
	cfg   CacheConfig
	slots []cacheSlot
	// heat tracks access counts for admission (a small CMS would be the
	// hardware structure; a direct-mapped counter array is equivalent at
	// this scale).
	heat map[uint64]uint64

	Hits, Misses uint64
	Evictions    uint64
	Ages         uint64
}

// NewCache builds the cache and its program.
func NewCache(cfg CacheConfig) (*Cache, *pisa.Program) {
	if cfg.Ways <= 0 {
		cfg.Ways = 64
	}
	if cfg.AgeShift == 0 {
		cfg.AgeShift = 1
	}
	if cfg.AdmitThreshold == 0 {
		cfg.AdmitThreshold = 3
	}
	c := &Cache{cfg: cfg, slots: make([]cacheSlot, cfg.Ways), heat: make(map[uint64]uint64)}
	p := pisa.NewProgram("netcache")

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		op, key, val, ok := c.parseReq(ctx)
		if !ok {
			// Not cache traffic: pass through by direction.
			if ctx.Pkt.InPort == cfg.ClientPort {
				ctx.EgressPort = cfg.ServerPort
			} else {
				ctx.EgressPort = cfg.ClientPort
			}
			return
		}
		switch op {
		case CacheGet:
			if slot, hit := c.lookup(key); hit {
				c.Hits++
				c.slots[slot].hits++
				// Answer from the switch: turn the request around.
				ctx.Emit(c.buildReply(ctx, key, c.slots[slot].value), ctx.Pkt.InPort)
				ctx.Drop()
				return
			}
			c.Misses++
			c.heat[key]++
			ctx.EgressPort = cfg.ServerPort
		case CachePut:
			// Writes invalidate (write-through to the server).
			if slot, hit := c.lookup(key); hit {
				c.slots[slot].valid = false
			}
			ctx.EgressPort = cfg.ServerPort
		case CacheReply:
			// Server reply passing back: admission check.
			if c.heat[key] >= cfg.AdmitThreshold {
				c.admit(key, val)
				delete(c.heat, key)
			}
			ctx.EgressPort = cfg.ClientPort
		default:
			ctx.EgressPort = cfg.ServerPort
		}
	})

	// Timer 0: approximate-LRU aging — decay per-slot hit counters so
	// cold items become eviction candidates. Timer 1: clear admission
	// statistics (the NetCache "react to workload changes" knob).
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		switch ctx.Ev.TimerID {
		case 0:
			c.Ages++
			for i := range c.slots {
				c.slots[i].hits >>= cfg.AgeShift
			}
		case 1:
			c.heat = make(map[uint64]uint64)
		}
	})
	return c, p
}

// Arm configures the aging and stats-clear timers.
func (c *Cache) Arm(sw *core.Switch, agePeriod, clearPeriod sim.Time) error {
	if err := sw.ConfigureTimer(0, agePeriod); err != nil {
		return err
	}
	return sw.ConfigureTimer(1, clearPeriod)
}

func (c *Cache) parseReq(ctx *pisa.Context) (op int, key, val uint64, ok bool) {
	if !ctx.Has(packet.LayerUDP) || ctx.Parsed.UDP.DstPort != CachePort && ctx.Parsed.UDP.SrcPort != CachePort {
		return 0, 0, 0, false
	}
	pay := ctx.Parsed.UDP.LayerPayload()
	if len(pay) < 17 {
		return 0, 0, 0, false
	}
	return int(pay[0]), binary.BigEndian.Uint64(pay[1:9]), binary.BigEndian.Uint64(pay[9:17]), true
}

// buildReply turns a GET into a REPLY frame back toward the requester.
func (c *Cache) buildReply(ctx *pisa.Context, key, val uint64) []byte {
	flow := ctx.Flow.Reverse()
	total := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + 17
	data := packet.BuildFrame(packet.FrameSpec{Flow: flow, TotalLen: total})
	pay := data[packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen:]
	pay[0] = CacheReply
	binary.BigEndian.PutUint64(pay[1:9], key)
	binary.BigEndian.PutUint64(pay[9:17], val)
	return data
}

func (c *Cache) lookup(key uint64) (int, bool) {
	for i := range c.slots {
		if c.slots[i].valid && c.slots[i].key == key {
			return i, true
		}
	}
	return -1, false
}

// admit inserts a key, evicting the approximately-least-recently-used
// slot (minimum aged hit counter).
func (c *Cache) admit(key, val uint64) {
	victim := 0
	var minHits uint64 = ^uint64(0)
	for i := range c.slots {
		if !c.slots[i].valid {
			victim = i
			minHits = 0
			break
		}
		if c.slots[i].hits < minHits {
			minHits = c.slots[i].hits
			victim = i
		}
	}
	if c.slots[victim].valid {
		c.Evictions++
	}
	c.slots[victim] = cacheSlot{key: key, value: val, valid: true, hits: 1}
}

// Cached reports whether a key is currently cached.
func (c *Cache) Cached(key uint64) bool {
	_, hit := c.lookup(key)
	return hit
}

// BuildCacheRequest builds a client GET/PUT frame for the cache protocol.
func BuildCacheRequest(flow packet.Flow, op int, key, val uint64) []byte {
	flow.DstPort = CachePort
	flow.Proto = packet.ProtoUDP
	total := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + 17
	data := packet.BuildFrame(packet.FrameSpec{Flow: flow, TotalLen: total})
	pay := data[packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen:]
	pay[0] = byte(op)
	binary.BigEndian.PutUint64(pay[1:9], key)
	binary.BigEndian.PutUint64(pay[9:17], val)
	return data
}

// BuildCacheReply builds a server REPLY frame.
func BuildCacheReply(flow packet.Flow, key, val uint64) []byte {
	flow.SrcPort = CachePort
	flow.Proto = packet.ProtoUDP
	total := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + 17
	data := packet.BuildFrame(packet.FrameSpec{Flow: flow, TotalLen: total})
	pay := data[packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen:]
	pay[0] = CacheReply
	binary.BigEndian.PutUint64(pay[1:9], key)
	binary.BigEndian.PutUint64(pay[9:17], val)
	return data
}
