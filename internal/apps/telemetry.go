package apps

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/sketch"
)

// TelemetryConfig parameterizes the INT-style report reducer (paper §3
// Network Monitoring: "data planes can use timer events to aggregate
// congestion information (e.g. queue size, packet loss, or active flow
// count) and only report anomalous events to the monitoring system
// periodically").
type TelemetryConfig struct {
	SwitchID uint32
	// EgressPort forwards data traffic; ReportPort carries reports.
	EgressPort, ReportPort int
	// EWMAShift smooths the per-interval byte counts (1/2^shift).
	EWMAShift uint
	// DeviationNum/DeviationDen: report when the interval's value
	// exceeds (Num/Den)x the smoothed baseline (default 2x).
	DeviationNum, DeviationDen uint64
	// FloorBytes suppresses reports below this absolute activity.
	FloorBytes uint64
}

// Telemetry aggregates per-interval congestion information from buffer
// events and emits a Report only when the interval is anomalous —
// reducing the report volume that would otherwise overwhelm a software
// monitor.
type Telemetry struct {
	cfg TelemetryConfig

	intervalBytes uint64
	intervalDrops uint64
	occPeak       int64
	occ           int64
	baseline      *sketch.EWMA
	seq           uint32

	// Intervals counts timer ticks; Reports counts anomalies reported;
	// Suppressed counts quiet intervals not reported.
	Intervals  uint64
	Reports    uint64
	Suppressed uint64
}

// NewTelemetry builds the reducer and its program.
func NewTelemetry(cfg TelemetryConfig) (*Telemetry, *pisa.Program) {
	if cfg.EWMAShift == 0 {
		cfg.EWMAShift = 3
	}
	if cfg.DeviationDen == 0 {
		cfg.DeviationNum, cfg.DeviationDen = 2, 1
	}
	if cfg.FloorBytes == 0 {
		cfg.FloorBytes = 4096
	}
	tl := &Telemetry{cfg: cfg, baseline: sketch.NewEWMA(cfg.EWMAShift)}
	p := pisa.NewProgram("telemetry-filter")

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		tl.intervalBytes += uint64(ctx.Ev.PktLen)
		tl.occ += int64(ctx.Ev.PktLen)
		if tl.occ > tl.occPeak {
			tl.occPeak = tl.occ
		}
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		tl.occ -= int64(ctx.Ev.PktLen)
	})
	p.HandleFunc(events.BufferOverflow, func(ctx *pisa.Context) {
		tl.intervalDrops++
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		tl.Intervals++
		bytes := tl.intervalBytes
		drops := tl.intervalDrops
		peak := uint64(tl.occPeak)
		tl.intervalBytes, tl.intervalDrops, tl.occPeak = 0, 0, tl.occ

		base := tl.baseline.Value()
		anomalous := drops > 0 ||
			(bytes > tl.cfg.FloorBytes && base > 0 &&
				bytes*tl.cfg.DeviationDen > base*tl.cfg.DeviationNum)
		// Update the baseline after the comparison so a spike does not
		// mask itself.
		tl.baseline.Observe(bytes)
		if !anomalous {
			tl.Suppressed++
			return
		}
		tl.Reports++
		rep := &packet.Report{
			Kind:   packet.ReportAnomaly,
			Switch: tl.cfg.SwitchID,
			Seq:    tl.seq,
			V0:     bytes,
			V1:     uint32(peak),
			V2:     uint16(drops),
		}
		tl.seq++
		ctx.Emit(packet.BuildControlFrame(packet.Broadcast,
			packet.MACFromUint64(uint64(tl.cfg.SwitchID)), rep), tl.cfg.ReportPort)
	})
	return tl, p
}

// Arm configures the aggregation timer.
func (tl *Telemetry) Arm(sw *core.Switch, interval sim.Time) error {
	return sw.ConfigureTimer(0, interval)
}

// ReductionRatio reports intervals per emitted report (the filter's
// compression of the monitoring stream).
func (tl *Telemetry) ReductionRatio() float64 {
	if tl.Reports == 0 {
		return float64(tl.Intervals)
	}
	return float64(tl.Intervals) / float64(tl.Reports)
}
