package apps

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// HULAConfig parameterizes a HULA-style congestion-aware load balancer
// (paper §3, Congestion Aware Forwarding; HULA is the paper's reference
// [14]).
type HULAConfig struct {
	// TorID identifies this switch when it originates probes.
	TorID uint16
	// ProbePeriod is how often the data plane's packet generator emits
	// probes (the capability baseline PISA lacks).
	ProbePeriod sim.Time
	// UplinkPorts are the ports toward the spine layer.
	UplinkPorts []int
	// HostPort is the port toward attached hosts.
	HostPort int
	// Tors is the number of ToR switches (sizes the best-hop table).
	Tors int
	// UtilDecayShift ages the local link-utilization estimate
	// (EWMA-by-shift on probe arrival).
	UtilDecayShift uint
}

// HULA implements the probe-driven path selection core of HULA on one
// switch: probes flood from each ToR carrying the max link utilization
// along their path; switches remember, per destination ToR, the best
// next hop and its path utilization, and forward data packets to the
// best hop.
type HULA struct {
	cfg HULAConfig

	// bestHop[tor] and bestUtil[tor] are HULA's per-destination state.
	bestHop  []int
	bestUtil []uint32

	// linkTxBytes accumulates per-port transmitted bytes; a timer
	// converts them to utilization in millionths of line rate.
	linkTxBytes []uint64
	linkUtil    []uint32

	// ProbesSeen counts probes processed; ProbesSent counts originated.
	ProbesSeen uint64
	ProbesSent uint64

	sw           *core.Switch
	utilInterval sim.Time

	// probeScratch and the scratch frame buffers below are reused across
	// probe emissions: the switch core copies generator/Emit frames into
	// pooled packets before the buffers are touched again, so per-probe
	// serialization allocates nothing in steady state.
	probeScratch packet.Probe
	genBuf       []byte
	emitBufs     [][]byte
}

// NewHULA builds the balancer program for one switch. Call Attach after
// loading to arm the generator and utilization timer.
func NewHULA(cfg HULAConfig) (*HULA, *pisa.Program) {
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = 100 * sim.Microsecond
	}
	if cfg.Tors <= 0 {
		cfg.Tors = 16
	}
	if cfg.UtilDecayShift == 0 {
		cfg.UtilDecayShift = 2
	}
	h := &HULA{
		cfg:         cfg,
		bestHop:     make([]int, cfg.Tors),
		bestUtil:    make([]uint32, cfg.Tors),
		linkTxBytes: make([]uint64, 64),
		linkUtil:    make([]uint32, 64),
	}
	for i := range h.bestHop {
		h.bestHop[i] = -1
		h.bestUtil[i] = ^uint32(0)
	}

	p := pisa.NewProgram("hula")

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		// Probe packets: update best-hop state, then forward the probe
		// onward (toward hosts-side it stops here; flooding across the
		// fabric is done by the spine copies).
		if packet.EtherTypeOf(ctx.Pkt.Data) == packet.EtherTypeProbe && ctx.Has(packet.LayerProbe) {
			h.handleProbe(ctx)
			return
		}
		// Data packets toward a remote ToR: pick the best uplink. The
		// destination ToR is derived from the IP (one /16 per ToR in the
		// experiment's addressing plan).
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		tor := int(uint32(ctx.Flow.Dst)>>16) % cfg.Tors
		if tor == int(cfg.TorID) {
			ctx.EgressPort = cfg.HostPort
			return
		}
		if hop := h.bestHop[tor]; hop >= 0 {
			ctx.EgressPort = hop
			return
		}
		// No probe state yet: hash across uplinks (ECMP fallback).
		ctx.EgressPort = cfg.UplinkPorts[int(ctx.Ev.FlowHash%uint64(len(cfg.UplinkPorts)))]
	})

	// Track transmitted bytes per port for the utilization estimate.
	p.HandleFunc(events.PacketTransmitted, func(ctx *pisa.Context) {
		if ctx.Ev.Port >= 0 && ctx.Ev.Port < len(h.linkTxBytes) {
			h.linkTxBytes[ctx.Ev.Port] += uint64(ctx.Ev.PktLen) + core.WireOverhead
		}
	})

	// Timer 0: refresh per-port utilization from the byte counters.
	// Timer 1: age best-path utilization so stale paths are retried.
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		switch ctx.Ev.TimerID {
		case 0:
			h.refreshUtil()
		case 1:
			for i := range h.bestUtil {
				if h.bestUtil[i] != ^uint32(0) {
					h.bestUtil[i] += h.bestUtil[i] >> 2 // decay toward re-exploration
				}
			}
		}
	})

	// Probes entering via the generator (this switch originates them).
	p.HandleFunc(events.GeneratedPacket, func(ctx *pisa.Context) {
		// Generated probes flood all uplinks: emit copies on every
		// uplink but the first, and forward the original on the first.
		if len(cfg.UplinkPorts) == 0 {
			ctx.Drop()
			return
		}
		for _, port := range cfg.UplinkPorts[1:] {
			// The slot packet stays live until the core copies the
			// emitted frames into pooled packets, so its bytes can be
			// emitted directly without a defensive copy.
			ctx.Emit(ctx.Pkt.Data, port)
		}
		ctx.EgressPort = cfg.UplinkPorts[0]
	})
	return h, p
}

// handleProbe processes an incoming probe on ctx's switch.
func (h *HULA) handleProbe(ctx *pisa.Context) {
	h.ProbesSeen++
	pr := ctx.Parsed.Probe
	tor := int(pr.TorID) % h.cfg.Tors
	inPort := ctx.Pkt.InPort

	// Fold the local receive-link utilization into the path maximum.
	util := pr.MaxUtil
	if inPort >= 0 && inPort < len(h.linkUtil) && h.linkUtil[inPort] > util {
		util = h.linkUtil[inPort]
	}

	// Better path (or refresh of the current best hop)?
	if util <= h.bestUtil[tor] || h.bestHop[tor] == inPort || h.bestHop[tor] < 0 {
		h.bestUtil[tor] = util
		h.bestHop[tor] = inPort
	}
	// ToR switches do not propagate probes further (two-level fabric);
	// spine switches flood them to all other ports. The experiment
	// wires spine behaviour via SpineProbeRelay.
	ctx.Drop()
}

// refreshUtil converts byte counters into utilization (millionths of the
// line rate over the refresh interval) and decays them.
func (h *HULA) refreshUtil() {
	if h.sw == nil {
		return
	}
	rate := h.sw.Config().LineRate
	interval := h.utilInterval
	if interval <= 0 {
		return
	}
	capacity := uint64(rate) / 8 * uint64(interval) / uint64(sim.Second) // bytes per interval
	if capacity == 0 {
		return
	}
	for i := range h.linkTxBytes {
		u := h.linkTxBytes[i] * 1_000_000 / capacity
		if u > 1_000_000 {
			u = 1_000_000
		}
		// Rise immediately, decay by EWMA: classic HULA behaviour.
		old := int64(h.linkUtil[i])
		if int64(u) >= old {
			h.linkUtil[i] = uint32(u)
		} else {
			h.linkUtil[i] = uint32(old + ((int64(u) - old) >> h.cfg.UtilDecayShift))
		}
		h.linkTxBytes[i] = 0
	}
}

// Attach arms the switch's generator and timers for this balancer:
// probes every ProbePeriod and utilization refresh every refresh.
func (h *HULA) Attach(sw *core.Switch, refresh sim.Time) error {
	h.sw = sw
	h.utilInterval = refresh
	if err := sw.ConfigureTimer(0, refresh); err != nil {
		return err
	}
	if err := sw.ConfigureTimer(1, 8*refresh); err != nil {
		return err
	}
	return sw.AddGenerator(h.cfg.ProbePeriod, func(seq uint64) ([]byte, int) {
		h.ProbesSent++
		h.probeScratch = packet.Probe{
			TorID: h.cfg.TorID,
			Seq:   uint32(seq),
		}
		h.genBuf = packet.AppendControlFrame(h.genBuf[:0], packet.Broadcast,
			packet.MACFromUint64(uint64(h.cfg.TorID)), &h.probeScratch)
		return h.genBuf, -1
	})
}

// BestHop reports the current best next hop and path utilization toward
// a ToR.
func (h *HULA) BestHop(tor int) (port int, util uint32) {
	return h.bestHop[tor%h.cfg.Tors], h.bestUtil[tor%h.cfg.Tors]
}

// LinkUtil reports the latest utilization estimate for a port, in
// millionths of line rate.
func (h *HULA) LinkUtil(port int) uint32 {
	if port < 0 || port >= len(h.linkUtil) {
		return 0
	}
	return h.linkUtil[port]
}

// SpineProbeRelay returns a program for a spine switch in the HULA
// fabric: probes arriving on one port are re-stamped with the maximum of
// their path utilization and the spine's local link utilization, then
// flooded to every other port; data packets route back to the ToR that
// owns the destination /16.
func SpineProbeRelay(ports int, tors int, torPortOf func(tor int) int) (*HULA, *pisa.Program) {
	h := &HULA{
		cfg:         HULAConfig{Tors: tors},
		linkTxBytes: make([]uint64, 64),
		linkUtil:    make([]uint32, 64),
	}
	p := pisa.NewProgram("hula-spine")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if packet.EtherTypeOf(ctx.Pkt.Data) == packet.EtherTypeProbe && ctx.Has(packet.LayerProbe) {
			h.ProbesSeen++
			pr := ctx.Parsed.Probe
			util := pr.MaxUtil
			// The spine knows the utilization of each of its links; the
			// probe's path includes the egress link it will take, so
			// each copy carries max(path, that link).
			nEmit := 0
			for port := 0; port < ports; port++ {
				if port == ctx.Pkt.InPort {
					continue
				}
				u := util
				if h.linkUtil[port] > u {
					u = h.linkUtil[port]
				}
				// One scratch buffer per emitted copy: every buffer must
				// stay live until the core copies the emitted frames into
				// pooled packets at the end of the slot.
				if len(h.emitBufs) <= nEmit {
					h.emitBufs = append(h.emitBufs, nil)
				}
				h.probeScratch = packet.Probe{
					TorID: pr.TorID, PathID: pr.PathID,
					MaxUtil: u, Hops: pr.Hops + 1, Seq: pr.Seq,
				}
				h.emitBufs[nEmit] = packet.AppendControlFrame(h.emitBufs[nEmit][:0],
					packet.Broadcast, packet.MACFromUint64(uint64(pr.TorID)), &h.probeScratch)
				ctx.Emit(h.emitBufs[nEmit], port)
				nEmit++
			}
			ctx.Drop()
			return
		}
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		tor := int(uint32(ctx.Flow.Dst)>>16) % tors
		ctx.EgressPort = torPortOf(tor)
	})
	p.HandleFunc(events.PacketTransmitted, func(ctx *pisa.Context) {
		if ctx.Ev.Port >= 0 && ctx.Ev.Port < len(h.linkTxBytes) {
			h.linkTxBytes[ctx.Ev.Port] += uint64(ctx.Ev.PktLen) + core.WireOverhead
		}
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		if ctx.Ev.TimerID == 0 {
			h.refreshUtil()
		}
	})
	return h, p
}

// AttachSpine arms the spine's utilization timer.
func (h *HULA) AttachSpine(sw *core.Switch, refresh sim.Time) error {
	h.sw = sw
	h.utilInterval = refresh
	return sw.ConfigureTimer(0, refresh)
}
