package apps

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// PolicerConfig parameterizes the timer-built token-bucket policer
// (paper §3, Traffic Management: "if we use timer events, token bucket
// meters can be constructed from simple registers" — instead of relying
// on a fixed-function meter extern).
type PolicerConfig struct {
	Slots      int      // independent buckets (per flow slot)
	Rate       sim.Rate // token fill rate per bucket
	BurstBytes int      // bucket depth
	RefillEach sim.Time // timer period
	EgressPort int
}

// Policer enforces per-flow rates with registers refilled by a timer
// event: each timer expiration adds rate*period tokens (clamped to the
// burst), and each packet spends tokens or is dropped.
type Policer struct {
	cfg    PolicerConfig
	tokens *pisa.SharedRegister

	Passed  uint64
	Dropped uint64
	refill  int64
}

// NewPolicer builds the policer and its program.
func NewPolicer(cfg PolicerConfig) (*Policer, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 256
	}
	if cfg.BurstBytes <= 0 {
		cfg.BurstBytes = 3000
	}
	if cfg.RefillEach <= 0 {
		cfg.RefillEach = 100 * sim.Microsecond
	}
	pl := &Policer{cfg: cfg}
	pl.refill = int64(cfg.Rate) / 8 * int64(cfg.RefillEach) / int64(sim.Second)
	if pl.refill <= 0 {
		pl.refill = 1
	}
	p := pisa.NewProgram("policer-timer")
	// Packet threads own the main token register; timer refills go
	// through an aggregation bank (Figure 3) so a refill coinciding
	// with a packet slot is deferred to an idle cycle instead of lost.
	pl.tokens = p.AddRegister(pisa.NewAggregatedRegister("tokens", cfg.Slots,
		events.TimerExpiration))
	// Pre-fill buckets (control-plane initialization).
	for i := 0; i < cfg.Slots; i++ {
		pl.tokens.Write(freshCtx(events.ControlPlaneTriggered, 0), uint32(i), uint64(cfg.BurstBytes))
	}

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if !ctx.FlowOK {
			ctx.EgressPort = cfg.EgressPort
			return
		}
		slot := uint32(ctx.Ev.FlowHash % uint64(cfg.Slots))
		have := pl.tokens.Read(ctx, slot)
		need := uint64(ctx.Pkt.Len())
		if have < need {
			pl.Dropped++
			ctx.Drop()
			return
		}
		pl.tokens.Add(ctx, slot, -int64(need))
		pl.Passed++
		ctx.EgressPort = cfg.EgressPort
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		burst := int64(cfg.BurstBytes)
		for i := 0; i < cfg.Slots; i++ {
			slot := uint32(i)
			// The stale read bounds the clamp; any overshoot is at most
			// the undrained refill backlog, which idle cycles clear.
			have := int64(pl.tokens.Read(ctx, slot))
			add := pl.refill
			if have+add > burst {
				add = burst - have
			}
			if add > 0 {
				pl.tokens.Add(ctx, slot, add)
			}
		}
	})
	return pl, p
}

// freshCtx builds a one-shot context for out-of-band register access
// during setup.
func freshCtx(kind events.Kind, cycle uint64) *pisa.Context {
	ctx := &pisa.Context{}
	ctx.Reset(nil, events.Event{Kind: kind}, 0, cycle)
	return ctx
}

// Arm configures the refill timer.
func (pl *Policer) Arm(sw *core.Switch) error {
	return sw.ConfigureTimer(0, pl.cfg.RefillEach)
}

// FREDConfig parameterizes the FRED-like fair AQM (paper §5, "Computing
// Congestion Signals": enqueue/dequeue events compute total occupancy,
// per-active-flow occupancy, and active flow count; the policy enforces
// flow-level fairness).
type FREDConfig struct {
	Slots int
	// MinQBytes is the minimum per-flow share below which packets are
	// never dropped.
	MinQBytes int
	// TotalLimit is the buffer occupancy beyond which over-share flows
	// are dropped probabilistically (here: deterministically, the
	// data-plane-friendly variant).
	TotalLimit int
	EgressPort int
	ReportPort int // where buffer-occupancy reports go (-1: none)
}

// FRED enforces approximate flow-level fairness using congestion signals
// derived from enqueue/dequeue events: total buffered bytes, per-flow
// buffered bytes, and the active flow count.
type FRED struct {
	cfg FREDConfig
	// Three separate registers, one per congestion signal: a Figure 3
	// aggregation bank accepts at most one read-modify-write per event
	// per cycle, so each signal needs its own physical register (two
	// updates to one register from the same enqueue event would lose
	// one).
	perFlow    *pisa.SharedRegister
	totalBytes *pisa.SharedRegister // single entry
	actFlows   *pisa.SharedRegister // single entry

	Dropped uint64
	Passed  uint64
	// Samples records (time, total occupancy) pairs from timer reports.
	Samples []Sample
}

// Sample is a timestamped occupancy observation.
type Sample struct {
	At    sim.Time
	Value uint64
}

// NewFRED builds the AQM and its program.
func NewFRED(cfg FREDConfig) (*FRED, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 1024
	}
	if cfg.MinQBytes <= 0 {
		cfg.MinQBytes = 3000
	}
	if cfg.TotalLimit <= 0 {
		cfg.TotalLimit = 60000
	}
	f := &FRED{cfg: cfg}
	p := pisa.NewProgram("fred")
	f.perFlow = p.AddRegister(pisa.NewAggregatedRegister("flowOcc", cfg.Slots,
		events.BufferEnqueue, events.BufferDequeue))
	f.totalBytes = p.AddRegister(pisa.NewAggregatedRegister("totalBytes", 1,
		events.BufferEnqueue, events.BufferDequeue))
	f.actFlows = p.AddRegister(pisa.NewAggregatedRegister("activeFlows", 1,
		events.BufferEnqueue, events.BufferDequeue))

	slotOf := func(h uint64) uint32 { return uint32(h % uint64(cfg.Slots)) }

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.FlowOK {
			return
		}
		slot := slotOf(ctx.Ev.FlowHash)
		mine := f.perFlow.Read(ctx, slot)
		total := f.totalBytes.Read(ctx, 0)
		flows := f.actFlows.Read(ctx, 0)
		if flows == 0 {
			flows = 1
		}
		fairShare := total / flows
		if mine > uint64(cfg.MinQBytes) && total > uint64(cfg.TotalLimit) && mine > fairShare {
			f.Dropped++
			ctx.Drop()
			return
		}
		f.Passed++
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		slot := slotOf(ctx.Ev.FlowHash)
		// First buffered byte of this flow: it becomes active. The read
		// sees the stale pre-update value, so the count is approximate
		// under heavy churn — the staleness the paper discusses.
		if f.perFlow.Read(ctx, slot) == 0 {
			f.actFlows.Add(ctx, 0, +1)
		}
		f.perFlow.Add(ctx, slot, int64(ctx.Ev.PktLen))
		f.totalBytes.Add(ctx, 0, int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		slot := slotOf(ctx.Ev.FlowHash)
		f.perFlow.Add(ctx, slot, -int64(ctx.Ev.PktLen))
		f.totalBytes.Add(ctx, 0, -int64(ctx.Ev.PktLen))
		// Last byte out: flow becomes inactive. The read sees the stale
		// pre-update value, so compare against the packet length.
		if f.perFlow.Read(ctx, slot) <= uint64(ctx.Ev.PktLen) {
			f.actFlows.Add(ctx, 0, -1)
		}
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		v := f.totalBytes.Read(ctx, 0)
		f.Samples = append(f.Samples, Sample{At: ctx.Now, Value: v})
		if cfg.ReportPort >= 0 {
			// A real deployment emits a Report frame; the experiment
			// reads Samples directly.
			_ = v
		}
	})
	return f, p
}

// Arm configures the sampling timer.
func (f *FRED) Arm(sw *core.Switch, period sim.Time) error {
	return sw.ConfigureTimer(0, period)
}

// ActiveFlows reports the current active-flow estimate.
func (f *FRED) ActiveFlows() int64 { return f.actFlows.True(0) }

// TotalOccupancy reports the tracked total buffered bytes.
func (f *FRED) TotalOccupancy() int64 { return f.totalBytes.True(0) }
