package apps

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// FRRConfig parameterizes data-plane fast re-route (paper §3 Network
// Management and §5: "when a link failure is detected, the prototype
// updates its forwarding decisions immediately to send packets along a
// backup route").
type FRRConfig struct {
	// Primary and Backup map destination ToR/prefix index -> output port.
	Primary map[int]int
	Backup  map[int]int
	// PrefixOf extracts the destination index from a flow (defaults to
	// the /16-per-destination plan used across the experiments).
	PrefixOf func(f packet.Flow) int
	// NoLinkEvents omits the LinkStatusChange handler so the program
	// loads on a baseline architecture; port state then only changes via
	// SetPortState — i.e. through the control plane.
	NoLinkEvents bool
}

// FRR forwards on the primary port while its link is up and fails over to
// the backup within one LinkStatusChange event — no control-plane
// involvement.
type FRR struct {
	cfg    FRRConfig
	linkUp [64]bool

	// Failovers counts re-route transitions; RoutedPrimary/RoutedBackup
	// count forwarded packets by path.
	Failovers     uint64
	RoutedPrimary uint64
	RoutedBackup  uint64
}

// NewFRR builds the re-router and its program.
func NewFRR(cfg FRRConfig) (*FRR, *pisa.Program) {
	if cfg.PrefixOf == nil {
		cfg.PrefixOf = func(f packet.Flow) int { return int(uint32(f.Dst) >> 16) }
	}
	r := &FRR{cfg: cfg}
	for i := range r.linkUp {
		r.linkUp[i] = true
	}
	p := pisa.NewProgram("fast-reroute")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		dst := cfg.PrefixOf(ctx.Flow)
		prim, ok := cfg.Primary[dst]
		if !ok {
			ctx.Drop()
			return
		}
		if r.linkUp[prim] {
			r.RoutedPrimary++
			ctx.EgressPort = prim
			return
		}
		if backup, ok := cfg.Backup[dst]; ok {
			r.RoutedBackup++
			ctx.EgressPort = backup
			return
		}
		ctx.Drop()
	})
	if !cfg.NoLinkEvents {
		p.HandleFunc(events.LinkStatusChange, func(ctx *pisa.Context) {
			r.SetPortState(ctx.Ev.Port, ctx.Ev.Up)
		})
	}
	return r, p
}

// SetPortState updates the router's view of a port and counts failover
// transitions. The event handler calls it with LinkStatusChange state;
// a baseline architecture, which never sees those events, must instead
// reach it out-of-band through the control plane (controlplane.Agent.Do
// from a network OnLinkChange observer) — paying the control channel's
// latency on every convergence. The resilience experiments compare
// exactly these two paths.
func (r *FRR) SetPortState(port int, up bool) {
	if port < 0 || port >= len(r.linkUp) {
		return
	}
	if r.linkUp[port] && !up {
		r.Failovers++
	}
	r.linkUp[port] = up
}

// LivenessConfig parameterizes the data-plane liveness monitor (paper §5:
// periodic echo requests to neighbors; failure notifications to a central
// monitor with no control-plane intervention).
type LivenessConfig struct {
	SwitchID uint32
	// Ports to probe.
	ProbePorts []int
	// Period between probe rounds.
	Period sim.Time
	// DeadAfter misses marks a neighbor dead.
	DeadAfter int
	// MonitorPort is where ReportNeighborDown frames are sent.
	MonitorPort int
}

// Liveness implements the echo protocol: timer events transmit echo
// requests on each probed port and age reply state; neighbors answer
// echo requests in their own data plane; a missing-reply streak raises a
// notification to the monitor.
type Liveness struct {
	cfg    LivenessConfig
	seq    uint16
	misses map[int]int
	alive  map[int]bool

	// Notifications records (port, time) of neighbor-down reports.
	Notifications []PortEvent
	// Recoveries records neighbors coming back.
	Recoveries  []PortEvent
	RepliesSeen uint64
}

// PortEvent is a timestamped per-port observation.
type PortEvent struct {
	Port int
	At   sim.Time
}

// NewLiveness builds the monitor and its program.
func NewLiveness(cfg LivenessConfig) (*Liveness, *pisa.Program) {
	if cfg.Period <= 0 {
		cfg.Period = sim.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	lv := &Liveness{cfg: cfg, misses: make(map[int]int), alive: make(map[int]bool)}
	for _, port := range cfg.ProbePorts {
		lv.alive[port] = true
	}
	p := pisa.NewProgram("liveness")

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if packet.EtherTypeOf(ctx.Pkt.Data) != packet.EtherTypeEcho || !ctx.Has(packet.LayerEcho) {
			ctx.Drop() // this program only speaks the echo protocol
			return
		}
		e := ctx.Parsed.Echo
		switch e.Op {
		case packet.EchoRequest:
			// Answer in the data plane: swap to a reply out the arrival
			// port.
			reply := packet.Echo{
				Op: packet.EchoReply, Port: uint8(ctx.Pkt.InPort),
				Seq: e.Seq, Origin: e.Origin,
			}
			data := packet.BuildControlFrame(packet.Broadcast,
				packet.MACFromUint64(uint64(cfg.SwitchID)), &reply)
			ctx.Emit(data, ctx.Pkt.InPort)
			ctx.Drop()
		case packet.EchoReply:
			lv.RepliesSeen++
			port := ctx.Pkt.InPort
			lv.misses[port] = 0
			if !lv.alive[port] {
				lv.alive[port] = true
				lv.Recoveries = append(lv.Recoveries, PortEvent{Port: port, At: ctx.Now})
			}
			ctx.Drop()
		}
	})

	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		for _, port := range cfg.ProbePorts {
			lv.misses[port]++
			if lv.misses[port] > cfg.DeadAfter && lv.alive[port] {
				lv.alive[port] = false
				lv.Notifications = append(lv.Notifications, PortEvent{Port: port, At: ctx.Now})
				rep := &packet.Report{
					Kind: packet.ReportNeighborDown, Switch: cfg.SwitchID,
					V0: uint64(port),
				}
				ctx.Emit(packet.BuildControlFrame(packet.Broadcast,
					packet.MACFromUint64(uint64(cfg.SwitchID)), rep), cfg.MonitorPort)
			}
			req := &packet.Echo{Op: packet.EchoRequest, Seq: lv.seq, Origin: cfg.SwitchID}
			ctx.Emit(packet.BuildControlFrame(packet.Broadcast,
				packet.MACFromUint64(uint64(cfg.SwitchID)), req), port)
		}
		lv.seq++
	})
	return lv, p
}

// Arm configures the probe timer.
func (lv *Liveness) Arm(sw *core.Switch) error {
	return sw.ConfigureTimer(0, lv.cfg.Period)
}

// Alive reports the monitor's view of a port's neighbor.
func (lv *Liveness) Alive(port int) bool { return lv.alive[port] }

// EchoResponder returns a minimal program that answers echo requests (for
// neighbor switches that run nothing else) and forwards other traffic to
// the given port.
func EchoResponder(switchID uint32, egress int) *pisa.Program {
	p := pisa.NewProgram("echo-responder")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if packet.EtherTypeOf(ctx.Pkt.Data) == packet.EtherTypeEcho && ctx.Has(packet.LayerEcho) {
			e := ctx.Parsed.Echo
			if e.Op == packet.EchoRequest {
				reply := packet.Echo{
					Op: packet.EchoReply, Port: uint8(ctx.Pkt.InPort),
					Seq: e.Seq, Origin: e.Origin,
				}
				ctx.Emit(packet.BuildControlFrame(packet.Broadcast,
					packet.MACFromUint64(uint64(switchID)), &reply), ctx.Pkt.InPort)
			}
			ctx.Drop()
			return
		}
		ctx.EgressPort = egress
	})
	return p
}
