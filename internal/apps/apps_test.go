package apps

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func flowN(n int) packet.Flow {
	return packet.Flow{
		Src: packet.IP4(10, 0, 0, byte(n)), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: uint16(1000 + n), DstPort: 80, Proto: packet.ProtoUDP,
	}
}

func frameFor(f packet.Flow, size int) []byte {
	return packet.BuildFrame(packet.FrameSpec{Flow: f, TotalLen: size})
}

func TestMicroburstDetectsCulpritNotVictims(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	mb, prog := NewMicroburst(MicroburstConfig{Slots: 256, ThresholdBytes: 10000, EgressPort: 1})
	sw.MustLoad(prog)

	culprit := flowN(1)
	victim := flowN(2)
	// Background: steady small packets from the victim.
	for i := 0; i < 40; i++ {
		at := sim.Time(i) * 5 * sim.Microsecond
		sched.At(at, func() { sw.Inject(0, frameFor(victim, 100)) })
	}
	// Burst: 30 x 1500B from the culprit at t=20us, then trailers that
	// observe the queue.
	for i := 0; i < 30; i++ {
		at := 20*sim.Microsecond + sim.Time(i)*200*sim.Nanosecond
		sched.At(at, func() { sw.Inject(0, frameFor(culprit, 1500)) })
	}
	for i := 0; i < 10; i++ {
		at := 30*sim.Microsecond + sim.Time(i)*3*sim.Microsecond
		sched.At(at, func() { sw.Inject(0, frameFor(culprit, 1500)) })
	}
	sched.Run(10 * sim.Millisecond)

	if len(mb.Detections) == 0 {
		t.Fatal("culprit not detected")
	}
	culpritSlot := uint32(culprit.Hash() % 256)
	victimSlot := uint32(victim.Hash() % 256)
	for _, d := range mb.Detections {
		if d.FlowSlot == victimSlot {
			t.Errorf("victim flagged (slot %d)", victimSlot)
		}
		if d.FlowSlot != culpritSlot {
			t.Errorf("unexpected slot %d flagged", d.FlowSlot)
		}
	}
	// All occupancy drains back to zero.
	for i := uint32(0); i < 256; i++ {
		if v := mb.Register().True(i); v != 0 {
			t.Fatalf("slot %d residual %d", i, v)
		}
	}
}

func TestMicroburstStateAdvantage(t *testing.T) {
	mb, _ := NewMicroburst(MicroburstConfig{Slots: 1024})
	sn, _ := NewSnappy(SnappyConfig{Snapshots: 4, Rows: 3, Width: 1024})
	ratio := float64(sn.StateBytes()) / float64(mb.StateBytes())
	if ratio < 4 {
		t.Errorf("state ratio = %.1f, want >= 4 (paper: 'at least four-fold')", ratio)
	}
}

func TestSnappyBaselineDetectsApproximately(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.Baseline(), sched)
	sn, prog := NewSnappy(SnappyConfig{ThresholdBytes: 10000, EgressPort: 1, WindowPkts: 32})
	sw.MustLoad(prog)
	culprit := flowN(1)
	for i := 0; i < 40; i++ {
		at := sim.Time(i) * 300 * sim.Nanosecond
		sched.At(at, func() { sw.Inject(0, frameFor(culprit, 1500)) })
	}
	sched.Run(10 * sim.Millisecond)
	if len(sn.Detections) == 0 {
		t.Error("baseline failed to detect a heavy burst at all")
	}
}

func TestPolicerEnforcesRate(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	// 8 Mb/s per bucket = 1 MB/s; offered 5 MB/s -> ~80% dropped.
	pl, prog := NewPolicer(PolicerConfig{
		Slots: 16, Rate: 8 * sim.Mbps, BurstBytes: 2000,
		RefillEach: 100 * sim.Microsecond, EgressPort: 1,
	})
	sw.MustLoad(prog)
	if err := pl.Arm(sw); err != nil {
		t.Fatal(err)
	}
	fl := flowN(3)
	// 1000B every 200us = 5 MB/s for 100 ms.
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * 200 * sim.Microsecond
		sched.At(at, func() { sw.Inject(0, frameFor(fl, 1000)) })
	}
	sched.Run(110 * sim.Millisecond)
	total := pl.Passed + pl.Dropped
	if total != 500 {
		t.Fatalf("accounted %d packets", total)
	}
	passedRate := float64(pl.Passed) * 1000 / 0.1 // bytes/s over 100ms
	if passedRate < 0.7e6 || passedRate > 1.5e6 {
		t.Errorf("passed rate = %.2f MB/s, want ~1 MB/s", passedRate/1e6)
	}
}

func TestFREDFairness(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
	f, prog := NewFRED(FREDConfig{
		Slots: 256, MinQBytes: 3000, TotalLimit: 30000, EgressPort: 1, ReportPort: -1,
	})
	sw.MustLoad(prog)
	if err := f.Arm(sw, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	hog := flowN(1)
	mouse := flowN(2)
	gen := workload.NewGen(sched, rng, func(d []byte) { sw.Inject(0, d) })
	// Hog: 12 Gb/s offered into a 10G egress (oversubscribed).
	gen.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500), Rate: 12 * sim.Gbps, Until: 20 * sim.Millisecond})
	// Mouse: 200 Mb/s.
	gen2 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(1, d) })
	gen2.StartCBR(workload.CBRConfig{Flow: mouse, Size: workload.FixedSize(300), Rate: 200 * sim.Mbps, Until: 20 * sim.Millisecond})
	// Wait: both flows must leave via port 1... mouse comes in port 1.
	// Forwarding sends everything to EgressPort 1; inject mouse on port 2.
	sched.Run(25 * sim.Millisecond)

	if f.Dropped == 0 {
		t.Error("hog never throttled despite oversubscription")
	}
	// The mouse flow stays under MinQBytes and must never be dropped:
	// count detections per slot indirectly via Passed counters is
	// aggregate; instead assert total occupancy control.
	if occ := f.TotalOccupancy(); occ > 100000 {
		t.Errorf("occupancy ran away: %d bytes", occ)
	}
	if len(f.Samples) == 0 {
		t.Error("no occupancy samples from timer")
	}
}

func TestFRRFailsOverOnLinkEvent(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	dstIdx := int(uint32(flowN(0).Dst) >> 16)
	r, prog := NewFRR(FRRConfig{
		Primary: map[int]int{dstIdx: 1},
		Backup:  map[int]int{dstIdx: 2},
	})
	sw.MustLoad(prog)
	var ports []int
	sw.OnTransmit = func(p int, _ *packet.Packet) { ports = append(ports, p) }

	fl := flowN(5)
	sched.At(sim.Microsecond, func() { sw.Inject(0, frameFor(fl, 100)) })
	sched.At(sim.Millisecond, func() { sw.SetLink(1, false) })
	sched.At(2*sim.Millisecond, func() { sw.Inject(0, frameFor(fl, 100)) })
	sched.At(3*sim.Millisecond, func() { sw.SetLink(1, true) })
	sched.At(4*sim.Millisecond, func() { sw.Inject(0, frameFor(fl, 100)) })
	sched.Run(10 * sim.Millisecond)

	want := []int{1, 2, 1}
	if len(ports) != 3 {
		t.Fatalf("tx ports = %v", ports)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("tx ports = %v, want %v", ports, want)
		}
	}
	if r.Failovers != 1 || r.RoutedBackup != 1 || r.RoutedPrimary != 2 {
		t.Errorf("failovers=%d primary=%d backup=%d", r.Failovers, r.RoutedPrimary, r.RoutedBackup)
	}
}

func TestLivenessDetectsDeadNeighbor(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	mon := core.New(core.Config{Name: "monitor"}, core.EventDriven(), sched)
	nbr := core.New(core.Config{Name: "neighbor"}, core.EventDriven(), sched)

	lv, prog := NewLiveness(LivenessConfig{
		SwitchID: 1, ProbePorts: []int{1}, Period: sim.Millisecond,
		DeadAfter: 3, MonitorPort: 0,
	})
	mon.MustLoad(prog)
	nbr.MustLoad(EchoResponder(2, 0))
	net.AddSwitch(mon)
	net.AddSwitch(nbr)
	link := net.Connect(mon, 1, nbr, 1, 10*sim.Microsecond)
	collector := net.NewHost("collector", packet.IP4(9, 9, 9, 9))
	net.Attach(collector, mon, 0, 0)
	var reports int
	collector.OnRecv = func(data []byte) {
		var p packet.Parser
		var dec []packet.LayerType
		if err := p.Decode(data, &dec); err == nil && len(dec) == 2 && dec[1] == packet.LayerReport {
			if p.Report.Kind == packet.ReportNeighborDown {
				reports++
			}
		}
	}
	if err := lv.Arm(mon); err != nil {
		t.Fatal(err)
	}

	sched.Run(20 * sim.Millisecond)
	if !lv.Alive(1) {
		t.Fatal("healthy neighbor marked dead")
	}
	if lv.RepliesSeen == 0 {
		t.Fatal("no echo replies seen")
	}

	net.Fail(link)
	sched.Run(40 * sim.Millisecond)
	if lv.Alive(1) {
		t.Fatal("dead neighbor not detected")
	}
	if len(lv.Notifications) != 1 {
		t.Fatalf("notifications = %d", len(lv.Notifications))
	}
	// Detection latency ~ DeadAfter+1 probe periods.
	detectAt := lv.Notifications[0].At
	if detectAt > 20*sim.Millisecond+8*sim.Millisecond {
		t.Errorf("detection too slow: %v", detectAt)
	}
	if reports != 1 {
		t.Errorf("monitor host received %d reports, want 1", reports)
	}

	net.Repair(link)
	sched.Run(100 * sim.Millisecond)
	if !lv.Alive(1) {
		t.Error("neighbor not marked alive after repair")
	}
	if len(lv.Recoveries) != 1 {
		t.Errorf("recoveries = %d", len(lv.Recoveries))
	}
}

func TestFlowRateMeasuresKnownRates(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	fr, prog := NewFlowRate(FlowRateConfig{Slots: 64, Buckets: 10, EgressPort: 1})
	sw.MustLoad(prog)
	if err := fr.Arm(sw, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	f1 := flowN(1) // 1 MB/s
	f2 := flowN(2) // 4 MB/s
	g1 := workload.NewGen(sched, rng, func(d []byte) { sw.Inject(0, d) })
	g1.StartCBR(workload.CBRConfig{Flow: f1, Size: workload.FixedSize(1000), Rate: 8 * sim.Mbps * (1000 + 24) / 1000, Until: 50 * sim.Millisecond})
	g2 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(1, d) })
	g2.StartCBR(workload.CBRConfig{Flow: f2, Size: workload.FixedSize(1000), Rate: 32 * sim.Mbps * (1000 + 24) / 1000, Until: 50 * sim.Millisecond})
	sched.Run(50 * sim.Millisecond)

	r1 := fr.Rate(fr.SlotOf(f1.Hash()))
	r2 := fr.Rate(fr.SlotOf(f2.Hash()))
	if r1 < 0.8e6 || r1 > 1.2e6 {
		t.Errorf("flow1 rate = %.2f MB/s, want ~1", r1/1e6)
	}
	if r2 < 3.2e6 || r2 > 4.8e6 {
		t.Errorf("flow2 rate = %.2f MB/s, want ~4", r2/1e6)
	}
	if fr.Shifts < 40 {
		t.Errorf("shifts = %d", fr.Shifts)
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	c, prog := NewCache(CacheConfig{Ways: 4, ServerPort: 1, ClientPort: 0, AdmitThreshold: 2})
	sw.MustLoad(prog)
	if err := c.Arm(sw, 10*sim.Millisecond, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	client := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1), SrcPort: 777, Proto: packet.ProtoUDP}
	var clientGot, serverGot int
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		switch port {
		case 0:
			clientGot++
		case 1:
			serverGot++
			// The "server" answers GETs with replies injected back.
			var p packet.Parser
			var dec []packet.LayerType
			if p.Decode(pkt.Data, &dec) == nil && len(dec) > 2 && dec[2] == packet.LayerUDP {
				pay := p.UDP.LayerPayload()
				if len(pay) >= 17 && pay[0] == CacheGet {
					key := uint64(pay[1])<<56 | uint64(pay[2])<<48 | uint64(pay[3])<<40 | uint64(pay[4])<<32 |
						uint64(pay[5])<<24 | uint64(pay[6])<<16 | uint64(pay[7])<<8 | uint64(pay[8])
					reply := BuildCacheReply(client.Reverse(), key, key*10)
					sched.After(50*sim.Microsecond, func() { sw.Inject(1, reply) })
				}
			}
		}
	}
	// Three GETs for key 7: first two miss (heat builds), reply admits,
	// third hits in the switch.
	for i := 0; i < 3; i++ {
		at := sim.Time(i+1) * sim.Millisecond
		sched.At(at, func() { sw.Inject(0, BuildCacheRequest(client, CacheGet, 7, 0)) })
	}
	sched.Run(10 * sim.Millisecond)
	if !c.Cached(7) {
		t.Fatal("hot key not admitted")
	}
	if c.Hits != 1 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", c.Hits, c.Misses)
	}
	// A PUT invalidates.
	sw.Inject(0, BuildCacheRequest(client, CachePut, 7, 99))
	sched.Run(20 * sim.Millisecond)
	if c.Cached(7) {
		t.Error("PUT did not invalidate")
	}
}

func TestCacheLRUAgingEvictsCold(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	c, prog := NewCache(CacheConfig{Ways: 2, ServerPort: 1, ClientPort: 0, AdmitThreshold: 1, AgeShift: 1})
	sw.MustLoad(prog)
	if err := c.Arm(sw, sim.Millisecond, sim.Second); err != nil {
		t.Fatal(err)
	}
	// Admit keys 1 and 2 directly (threshold 1: one miss + reply).
	client := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1), SrcPort: 7, Proto: packet.ProtoUDP}
	admit := func(key uint64, at sim.Time) {
		sched.At(at, func() { sw.Inject(0, BuildCacheRequest(client, CacheGet, key, 0)) })
		sched.At(at+100*sim.Microsecond, func() { sw.Inject(1, BuildCacheReply(client.Reverse(), key, key)) })
	}
	admit(1, sim.Millisecond)
	admit(2, 2*sim.Millisecond)
	// Keep key 1 hot — several GETs per aging tick — through the
	// admission of key 3; key 2 goes cold and its counter ages to zero.
	for i := 0; i < 120; i++ {
		at := 3*sim.Millisecond + sim.Time(i)*250*sim.Microsecond
		sched.At(at, func() { sw.Inject(0, BuildCacheRequest(client, CacheGet, 1, 0)) })
	}
	// Admit key 3: must evict cold key 2, not hot key 1.
	admit(3, 30*sim.Millisecond+500*sim.Microsecond)
	sched.Run(40 * sim.Millisecond)
	if !c.Cached(1) {
		t.Error("hot key evicted")
	}
	if c.Cached(2) {
		t.Error("cold key survived")
	}
	if !c.Cached(3) {
		t.Error("new key not admitted")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
	if c.Ages == 0 {
		t.Error("aging timer never fired")
	}
}

func TestCMSResetComparison(t *testing.T) {
	// Event-driven resets: zero control messages, tiny jitter.
	// Baseline: rows messages per reset, big jitter.
	period := 5 * sim.Millisecond

	schedE := sim.NewScheduler()
	swE := core.New(core.Config{}, core.EventDriven(), schedE)
	appE, progE := NewCMSEventDriven(3, 512, 1)
	swE.MustLoad(progE)
	if err := appE.Arm(swE, period); err != nil {
		t.Fatal(err)
	}
	schedE.Run(100 * sim.Millisecond)
	if n := len(appE.ResetTimes); n < 18 || n > 21 {
		t.Fatalf("event-driven resets = %d", n)
	}
	jE := appE.ResetJitter()

	schedB := sim.NewScheduler()
	swB := core.New(core.Config{}, core.Baseline(), schedB)
	appB, progB := NewCMSBaseline(3, 512, 1)
	swB.MustLoad(progB)
	agent := controlplane.New(schedB, sim.NewRNG(7))
	appB.StartBaselineResets(schedB, agent, period)
	schedB.Run(100 * sim.Millisecond)
	jB := appB.ResetJitter()

	if agent.Messages == 0 {
		t.Fatal("baseline used no control messages")
	}
	// Every reset costs one message per sketch row; the last issued
	// reset may still be in flight at the horizon.
	if agent.Messages < uint64(appB.CMS.ResetCost())*uint64(len(appB.ResetTimes)) {
		t.Errorf("messages = %d for %d resets", agent.Messages, len(appB.ResetTimes))
	}
	// The event-driven jitter must be orders of magnitude smaller.
	if jE.Max() >= jB.Mean()/10 {
		t.Errorf("jitter: event max=%.0fps baseline mean=%.0fps — expected >=10x gap",
			jE.Max(), jB.Mean())
	}
}

func TestHULAProbeSelection(t *testing.T) {
	// Drive the ToR program with hand-crafted probes: the best hop must
	// follow the lowest path utilization and switch when utilizations
	// change.
	sched := sim.NewScheduler()
	sw := core.New(core.Config{Name: "tor0"}, core.EventDriven(), sched)
	h, prog := NewHULA(HULAConfig{
		TorID: 0, UplinkPorts: []int{1, 2}, HostPort: 0, Tors: 2,
	})
	sw.MustLoad(prog)

	probe := func(port int, util uint32, seq uint32) []byte {
		return packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(9),
			&packet.Probe{TorID: 1, MaxUtil: util, Seq: seq, Hops: 1})
	}
	// Port 1 path reports 300k (30%), port 2 path reports 100k (10%).
	sw.Inject(1, probe(1, 300_000, 1))
	sw.Inject(2, probe(2, 100_000, 1))
	sched.Run(sim.Millisecond)
	hop, util := h.BestHop(1)
	if hop != 2 || util != 100_000 {
		t.Fatalf("best hop = %d util=%d, want port 2 @100k", hop, util)
	}
	// The picked path degrades (700k) — a refresh of the current best
	// hop always applies — and then a probe on port 1 reports a better
	// path and wins.
	sw.Inject(2, probe(2, 700_000, 2))
	sched.Run(2 * sim.Millisecond)
	sw.Inject(1, probe(1, 200_000, 2))
	sched.Run(4 * sim.Millisecond)
	hop, util = h.BestHop(1)
	if hop != 1 || util != 200_000 {
		t.Fatalf("after degradation best hop = %d util=%d, want port 1 @200k", hop, util)
	}
	if h.ProbesSeen != 4 {
		t.Errorf("probes seen = %d", h.ProbesSeen)
	}
	// Data packets toward tor1 must leave on the chosen uplink.
	var tx []int
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = append(tx, p) }
	sw.Inject(0, frameFor(packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 5),
		SrcPort: 4, DstPort: 5, Proto: packet.ProtoUDP,
	}, 200))
	sched.Run(10 * sim.Millisecond)
	if len(tx) != 1 || tx[0] != 1 {
		t.Errorf("data left on %v, want port 1", tx)
	}
}

func TestHULAEndToEndProbePropagation(t *testing.T) {
	// tor0 and tor1 each generate probes; two spines relay them. Both
	// ToRs must learn a best hop toward the other within a few probe
	// periods, entirely in the data plane.
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	mkTor := func(name string, id uint16) (*core.Switch, *HULA) {
		sw := core.New(core.Config{Name: name}, core.EventDriven(), sched)
		h, prog := NewHULA(HULAConfig{
			TorID: id, ProbePeriod: 200 * sim.Microsecond,
			UplinkPorts: []int{1, 2}, HostPort: 0, Tors: 2,
		})
		sw.MustLoad(prog)
		return sw, h
	}
	tor0, h0 := mkTor("tor0", 0)
	tor1, h1 := mkTor("tor1", 1)
	mkSpine := func(name string) (*core.Switch, *HULA) {
		sw := core.New(core.Config{Name: name}, core.EventDriven(), sched)
		h, prog := SpineProbeRelay(2, 2, func(tor int) int { return tor })
		sw.MustLoad(prog)
		return sw, h
	}
	sp0, sh0 := mkSpine("spine0")
	sp1, sh1 := mkSpine("spine1")
	for _, sw := range []*core.Switch{tor0, tor1, sp0, sp1} {
		net.AddSwitch(sw)
	}
	net.Connect(tor0, 1, sp0, 0, sim.Microsecond)
	net.Connect(tor0, 2, sp1, 0, sim.Microsecond)
	net.Connect(tor1, 1, sp0, 1, sim.Microsecond)
	net.Connect(tor1, 2, sp1, 1, sim.Microsecond)

	refresh := 200 * sim.Microsecond
	if err := h0.Attach(tor0, refresh); err != nil {
		t.Fatal(err)
	}
	if err := h1.Attach(tor1, refresh); err != nil {
		t.Fatal(err)
	}
	if err := sh0.AttachSpine(sp0, refresh); err != nil {
		t.Fatal(err)
	}
	if err := sh1.AttachSpine(sp1, refresh); err != nil {
		t.Fatal(err)
	}

	sched.Run(5 * sim.Millisecond)
	if h0.ProbesSent == 0 || h1.ProbesSent == 0 {
		t.Fatal("generators idle")
	}
	hop01, _ := h0.BestHop(1)
	hop10, _ := h1.BestHop(0)
	if hop01 != 1 && hop01 != 2 {
		t.Errorf("tor0 best hop toward tor1 = %d", hop01)
	}
	if hop10 != 1 && hop10 != 2 {
		t.Errorf("tor1 best hop toward tor0 = %d", hop10)
	}
	if sh0.ProbesSeen == 0 || sh1.ProbesSeen == 0 {
		t.Error("spines relayed no probes")
	}
}
