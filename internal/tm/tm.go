package tm

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Discipline selects how a port schedules among its queues.
type Discipline uint8

// Scheduling disciplines.
const (
	// FIFO serves the port's queues as one logical FIFO (queue 0 only).
	FIFO Discipline = iota
	// StrictPriority always serves the lowest-numbered non-empty queue.
	StrictPriority
	// DRR serves queues with deficit round robin (byte-fair).
	DRR
	// PIFOSched serves the port from a single PIFO ordered by the rank
	// supplied at enqueue time (programmable scheduling).
	PIFOSched
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case StrictPriority:
		return "prio"
	case DRR:
		return "drr"
	case PIFOSched:
		return "pifo"
	default:
		return fmt.Sprintf("discipline(%d)", uint8(d))
	}
}

// Config sizes a traffic manager.
type Config struct {
	Ports         int
	QueuesPerPort int
	// QueueCapBytes bounds each queue's occupancy in bytes; a packet
	// that would exceed it is dropped (tail drop) with a BufferOverflow
	// event.
	QueueCapBytes int
	Discipline    Discipline
	// DRRQuantum is the per-round byte quantum for DRR (default 1514).
	DRRQuantum int
}

// item is a buffered packet with its enqueue annotations.
type item struct {
	pkt      *packet.Packet
	flowHash uint64
	rank     uint64
	enqAt    sim.Time
}

type queue struct {
	items []item
	head  int
	bytes int
}

func (q *queue) len() int { return len(q.items) - q.head }

func (q *queue) push(it item) {
	q.items = append(q.items, it)
	q.bytes += it.pkt.Len()
}

func (q *queue) pop() (item, bool) {
	if q.head >= len(q.items) {
		return item{}, false
	}
	it := q.items[q.head]
	q.items[q.head] = item{} // release reference
	q.head++
	q.bytes -= it.pkt.Len()
	if q.head > 512 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return it, true
}

type port struct {
	queues  []queue
	pifo    *PIFO
	bytes   int // total buffered bytes across queues
	deficit []int
	rr      int  // DRR pointer
	granted bool // DRR: quantum already granted for the current visit
}

// TM is the traffic manager. It is a passive data structure: the switch
// model calls Enqueue when the ingress pipeline emits a packet and Dequeue
// when an output port is ready for the next packet. Every state change is
// announced on the event tap, which the event-driven architecture routes
// into its event queues (and the baseline architecture ignores).
type TM struct {
	cfg   Config
	ports []port

	// OnEvent, when non-nil, receives BufferEnqueue, BufferDequeue,
	// BufferOverflow and BufferUnderflow events as they happen.
	OnEvent func(events.Event)

	seq       uint64
	enqueues  uint64
	dequeues  uint64
	drops     uint64
	maxBytes  int
	totalByte int
}

// New builds a traffic manager. Zero-value config fields get defaults:
// 1 port, 1 queue per port, 512 KiB per queue, FIFO.
func New(cfg Config) *TM {
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.QueuesPerPort <= 0 {
		cfg.QueuesPerPort = 1
	}
	if cfg.QueueCapBytes <= 0 {
		cfg.QueueCapBytes = 512 << 10
	}
	if cfg.DRRQuantum <= 0 {
		cfg.DRRQuantum = 1514
	}
	t := &TM{cfg: cfg, ports: make([]port, cfg.Ports)}
	for i := range t.ports {
		t.ports[i].queues = make([]queue, cfg.QueuesPerPort)
		t.ports[i].deficit = make([]int, cfg.QueuesPerPort)
		if cfg.Discipline == PIFOSched {
			t.ports[i].pifo = NewPIFO(0)
		}
	}
	return t
}

// Config returns the configuration the TM was built with.
func (t *TM) Config() Config { return t.cfg }

func (t *TM) emit(e events.Event) {
	if t.OnEvent != nil {
		e.Seq = t.seq
		t.seq++
		t.OnEvent(e)
	}
}

// Enqueue offers a packet to output queue q of the given port. rank is
// the PIFO rank (ignored by other disciplines); flowHash annotates the
// enqueue/dequeue events for per-flow state updates. It returns false when
// the packet was dropped (queue full), which raises a BufferOverflow
// event rather than a BufferEnqueue event.
func (t *TM) Enqueue(pkt *packet.Packet, outPort, q int, rank, flowHash uint64, now sim.Time) bool {
	p := &t.ports[outPort]
	if q < 0 || q >= t.cfg.QueuesPerPort {
		q = 0
	}
	qu := &p.queues[q]
	ev := events.Event{
		When: now, Port: outPort, Queue: q,
		PktLen: pkt.Len(), FlowHash: flowHash,
	}
	if qu.bytes+pkt.Len() > t.cfg.QueueCapBytes {
		t.drops++
		ev.Kind = events.BufferOverflow
		t.emit(ev)
		return false
	}
	it := item{pkt: pkt, flowHash: flowHash, rank: rank, enqAt: now}
	qu.push(it)
	p.bytes += pkt.Len()
	t.totalByte += pkt.Len()
	if t.totalByte > t.maxBytes {
		t.maxBytes = t.totalByte
	}
	if p.pifo != nil {
		p.pifo.Push(pifoRef{q: q}, rank)
	}
	t.enqueues++
	ev.Kind = events.BufferEnqueue
	t.emit(ev)
	return true
}

// pifoRef remembers which queue the PIFO entry's packet sits in; packets
// themselves stay in per-queue FIFOs so that byte accounting is uniform.
type pifoRef struct{ q int }

// EnqueueReq is one packet of a bulk enqueue (EnqueueN).
type EnqueueReq struct {
	Pkt      *packet.Packet
	Port, Q  int
	Rank     uint64
	FlowHash uint64
}

// EnqueueN offers a vector of packets to the TM in one call — the burst
// datapath's bulk handoff from the ingress pipeline. Items are admitted
// in slice order with exactly the semantics of calling Enqueue once per
// item at the same instant: per-item tail-drop admission, per-item
// BufferEnqueue/BufferOverflow events in order (so event sequence
// numbers match the loop), and PIFO push order preserved. onResult, when
// non-nil, runs for each item right after its admission decision —
// before the next item is considered — which lets the caller interleave
// its per-packet reaction (starting a transmit, releasing a dropped
// packet) exactly where the equivalent Enqueue loop would have. It
// returns the number of packets admitted.
func (t *TM) EnqueueN(reqs []EnqueueReq, now sim.Time, onResult func(i int, ok bool)) int {
	admitted := 0
	for i := range reqs {
		r := &reqs[i]
		ok := t.Enqueue(r.Pkt, r.Port, r.Q, r.Rank, r.FlowHash, now)
		if ok {
			admitted++
		}
		if onResult != nil {
			onResult(i, ok)
		}
	}
	return admitted
}

// Dequeue removes the next packet from the given output port according to
// the discipline. ok is false when the port is empty. A dequeue that
// leaves the port with no buffered bytes raises BufferUnderflow after the
// BufferDequeue event.
func (t *TM) Dequeue(outPort int, now sim.Time) (*packet.Packet, bool) {
	p := &t.ports[outPort]
	var it item
	var q int
	var ok bool
	switch t.cfg.Discipline {
	case PIFOSched:
		var ref any
		if ref, ok = p.pifo.Pop(); ok {
			q = ref.(pifoRef).q
			it, ok = p.queues[q].pop()
		}
	case StrictPriority:
		for i := range p.queues {
			if p.queues[i].len() > 0 {
				q = i
				it, ok = p.queues[i].pop()
				break
			}
		}
	case DRR:
		it, q, ok = t.drrPick(p)
	default: // FIFO
		q = 0
		it, ok = p.queues[0].pop()
	}
	if !ok {
		return nil, false
	}
	p.bytes -= it.pkt.Len()
	t.totalByte -= it.pkt.Len()
	t.dequeues++
	t.emit(events.Event{
		Kind: events.BufferDequeue, When: now, Port: outPort, Queue: q,
		PktLen: it.pkt.Len(), FlowHash: it.flowHash,
	})
	if p.bytes == 0 {
		t.emit(events.Event{Kind: events.BufferUnderflow, When: now, Port: outPort, Queue: q})
	}
	return it.pkt, true
}

// drrPick implements deficit round robin across the port's queues: each
// visit to a backlogged queue grants one quantum, then the queue is served
// while its deficit covers the head packet.
func (t *TM) drrPick(p *port) (item, int, bool) {
	n := len(p.queues)
	// A queue's deficit can require several quantum grants for a large
	// head packet, so allow enough iterations for the worst case.
	maxTries := 2 * n * (packet.MaxFrameLen/t.cfg.DRRQuantum + 2)
	for tries := 0; tries < maxTries; tries++ {
		q := p.rr
		qu := &p.queues[q]
		if qu.len() == 0 {
			p.deficit[q] = 0
			p.rr = (p.rr + 1) % n
			p.granted = false
			continue
		}
		if !p.granted {
			p.deficit[q] += t.cfg.DRRQuantum
			p.granted = true
		}
		head := qu.items[qu.head]
		if p.deficit[q] < head.pkt.Len() {
			p.rr = (p.rr + 1) % n
			p.granted = false
			continue
		}
		p.deficit[q] -= head.pkt.Len()
		it, _ := qu.pop()
		if qu.len() == 0 {
			p.deficit[q] = 0
			p.rr = (p.rr + 1) % n
			p.granted = false
		}
		return it, q, true
	}
	return item{}, 0, false
}

// PortBytes returns the buffered bytes on a port.
func (t *TM) PortBytes(outPort int) int { return t.ports[outPort].bytes }

// QueueBytes returns the buffered bytes in one queue.
func (t *TM) QueueBytes(outPort, q int) int { return t.ports[outPort].queues[q].bytes }

// QueueLen returns the number of packets in one queue.
func (t *TM) QueueLen(outPort, q int) int { return t.ports[outPort].queues[q].len() }

// TotalBytes returns the buffered bytes across the whole TM.
func (t *TM) TotalBytes() int { return t.totalByte }

// Stats reports lifetime counters: enqueues, dequeues, overflow drops and
// the peak total buffer occupancy in bytes.
func (t *TM) Stats() (enq, deq, drops uint64, peakBytes int) {
	return t.enqueues, t.dequeues, t.drops, t.maxBytes
}
