package tm

import (
	"testing"

	"repro/internal/packet"
)

// Micro-benchmarks for traffic-manager operations.

func BenchmarkEnqueueDequeue(b *testing.B) {
	tmgr := New(Config{Ports: 4, QueueCapBytes: 1 << 30})
	pkt := &packet.Packet{Data: make([]byte, 300)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmgr.Enqueue(pkt, i&3, 0, 0, uint64(i), 0)
		tmgr.Dequeue(i&3, 0)
	}
}

func BenchmarkPIFO(b *testing.B) {
	p := NewPIFO(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Push(nil, uint64(i*2654435761)>>16)
		if p.Len() > 1024 {
			p.Pop()
		}
	}
}
