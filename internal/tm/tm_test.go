package tm

import (
	"testing"
	"testing/quick"

	"repro/internal/events"
	"repro/internal/packet"
)

func mkPkt(n int) *packet.Packet {
	return &packet.Packet{Data: make([]byte, n)}
}

func TestPIFOOrdering(t *testing.T) {
	p := NewPIFO(0)
	p.Push("c", 30)
	p.Push("a", 10)
	p.Push("b", 20)
	p.Push("a2", 10) // tie: after a
	want := []string{"a", "a2", "b", "c"}
	for _, w := range want {
		v, ok := p.Pop()
		if !ok || v.(string) != w {
			t.Fatalf("pop = %v ok=%v, want %q", v, ok, w)
		}
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("pop from empty PIFO")
	}
}

func TestPIFOCapacity(t *testing.T) {
	p := NewPIFO(2)
	if !p.Push(1, 1) || !p.Push(2, 2) {
		t.Fatal("pushes refused under capacity")
	}
	if p.Push(3, 3) {
		t.Fatal("push beyond capacity accepted")
	}
	if r, ok := p.PeekRank(); !ok || r != 1 {
		t.Errorf("PeekRank = %d ok=%v", r, ok)
	}
}

func TestPIFOHeapProperty(t *testing.T) {
	f := func(ranks []uint16) bool {
		p := NewPIFO(0)
		for _, r := range ranks {
			p.Push(nil, uint64(r))
		}
		prev := uint64(0)
		for {
			r, ok := p.PeekRank()
			if !ok {
				break
			}
			if r < prev {
				return false
			}
			prev = r
			p.Pop()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTMEnqueueDequeueEvents(t *testing.T) {
	var got []events.Event
	tmgr := New(Config{Ports: 2, QueuesPerPort: 1, QueueCapBytes: 1000})
	tmgr.OnEvent = func(e events.Event) { got = append(got, e) }

	if !tmgr.Enqueue(mkPkt(100), 1, 0, 0, 777, 10) {
		t.Fatal("enqueue refused")
	}
	if tmgr.PortBytes(1) != 100 || tmgr.TotalBytes() != 100 {
		t.Errorf("bytes = %d/%d", tmgr.PortBytes(1), tmgr.TotalBytes())
	}
	pkt, ok := tmgr.Dequeue(1, 20)
	if !ok || pkt.Len() != 100 {
		t.Fatalf("dequeue = %v ok=%v", pkt, ok)
	}
	// Expect enqueue, dequeue, underflow (port drained to zero).
	if len(got) != 3 {
		t.Fatalf("events = %v, want 3", got)
	}
	if got[0].Kind != events.BufferEnqueue || got[0].FlowHash != 777 || got[0].PktLen != 100 {
		t.Errorf("enqueue event = %+v", got[0])
	}
	if got[1].Kind != events.BufferDequeue || got[1].Port != 1 {
		t.Errorf("dequeue event = %+v", got[1])
	}
	if got[2].Kind != events.BufferUnderflow {
		t.Errorf("third event = %v, want underflow", got[2].Kind)
	}
}

func TestTMOverflow(t *testing.T) {
	var got []events.Event
	tmgr := New(Config{Ports: 1, QueueCapBytes: 150})
	tmgr.OnEvent = func(e events.Event) { got = append(got, e) }
	if !tmgr.Enqueue(mkPkt(100), 0, 0, 0, 1, 0) {
		t.Fatal("first enqueue refused")
	}
	if tmgr.Enqueue(mkPkt(100), 0, 0, 0, 2, 0) {
		t.Fatal("overflow enqueue accepted")
	}
	_, _, drops, _ := tmgr.Stats()
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
	last := got[len(got)-1]
	if last.Kind != events.BufferOverflow || last.FlowHash != 2 {
		t.Errorf("overflow event = %+v", last)
	}
	// The packet that was dropped must not affect occupancy.
	if tmgr.TotalBytes() != 100 {
		t.Errorf("total = %d, want 100", tmgr.TotalBytes())
	}
}

func TestTMDequeueEmpty(t *testing.T) {
	tmgr := New(Config{Ports: 1})
	if _, ok := tmgr.Dequeue(0, 0); ok {
		t.Fatal("dequeue from empty port succeeded")
	}
}

func TestTMStrictPriority(t *testing.T) {
	tmgr := New(Config{Ports: 1, QueuesPerPort: 3, Discipline: StrictPriority})
	tmgr.Enqueue(mkPkt(60), 0, 2, 0, 1, 0)
	tmgr.Enqueue(mkPkt(61), 0, 0, 0, 2, 0)
	tmgr.Enqueue(mkPkt(62), 0, 1, 0, 3, 0)
	wantLens := []int{61, 62, 60} // queue 0, then 1, then 2
	for i, w := range wantLens {
		pkt, ok := tmgr.Dequeue(0, 0)
		if !ok || pkt.Len() != w {
			t.Fatalf("dequeue %d = len %d, want %d", i, pkt.Len(), w)
		}
	}
}

func TestTMFIFOOrder(t *testing.T) {
	tmgr := New(Config{Ports: 1})
	for i := 0; i < 5; i++ {
		tmgr.Enqueue(mkPkt(60+i), 0, 0, 0, uint64(i), 0)
	}
	for i := 0; i < 5; i++ {
		pkt, ok := tmgr.Dequeue(0, 0)
		if !ok || pkt.Len() != 60+i {
			t.Fatalf("fifo order broken at %d: len=%d", i, pkt.Len())
		}
	}
}

func TestTMPIFODequeueByRank(t *testing.T) {
	tmgr := New(Config{Ports: 1, QueuesPerPort: 4, Discipline: PIFOSched})
	tmgr.Enqueue(mkPkt(100), 0, 0, 50, 1, 0) // rank 50
	tmgr.Enqueue(mkPkt(200), 0, 1, 10, 2, 0) // rank 10 -> first
	tmgr.Enqueue(mkPkt(300), 0, 2, 30, 3, 0) // rank 30
	want := []int{200, 300, 100}
	for i, w := range want {
		pkt, ok := tmgr.Dequeue(0, 0)
		if !ok || pkt.Len() != w {
			t.Fatalf("pifo dequeue %d = %d, want %d", i, pkt.Len(), w)
		}
	}
}

func TestTMDRRFairness(t *testing.T) {
	// Two queues, one with big packets, one with small; DRR should give
	// roughly equal bytes over time.
	tmgr := New(Config{Ports: 1, QueuesPerPort: 2, Discipline: DRR, DRRQuantum: 500, QueueCapBytes: 1 << 20})
	for i := 0; i < 100; i++ {
		tmgr.Enqueue(mkPkt(1000), 0, 0, 0, 1, 0) // 100 KB of big packets
	}
	for i := 0; i < 1000; i++ {
		tmgr.Enqueue(mkPkt(100), 0, 1, 0, 2, 0) // 100 KB of small packets
	}
	bytes := [2]int{}
	var deqEvents []events.Event
	tmgr.OnEvent = func(e events.Event) {
		if e.Kind == events.BufferDequeue {
			deqEvents = append(deqEvents, e)
		}
	}
	served := 0
	for served < 100000 {
		pkt, ok := tmgr.Dequeue(0, 0)
		if !ok {
			break
		}
		served += pkt.Len()
	}
	for _, e := range deqEvents {
		bytes[e.Queue] += e.PktLen
	}
	if bytes[0] == 0 || bytes[1] == 0 {
		t.Fatalf("one queue starved: %v", bytes)
	}
	ratio := float64(bytes[0]) / float64(bytes[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("DRR byte ratio = %.2f (%v), want ~1", ratio, bytes)
	}
}

func TestTMQueueAccounting(t *testing.T) {
	tmgr := New(Config{Ports: 2, QueuesPerPort: 2})
	tmgr.Enqueue(mkPkt(100), 0, 1, 0, 0, 0)
	tmgr.Enqueue(mkPkt(50), 1, 0, 0, 0, 0)
	if tmgr.QueueBytes(0, 1) != 100 || tmgr.QueueLen(0, 1) != 1 {
		t.Errorf("queue(0,1) = %d bytes %d pkts", tmgr.QueueBytes(0, 1), tmgr.QueueLen(0, 1))
	}
	if tmgr.TotalBytes() != 150 {
		t.Errorf("total = %d", tmgr.TotalBytes())
	}
	enq, deq, drops, peak := tmgr.Stats()
	if enq != 2 || deq != 0 || drops != 0 || peak != 150 {
		t.Errorf("stats = %d/%d/%d/%d", enq, deq, drops, peak)
	}
}

func TestTMConservationProperty(t *testing.T) {
	// Property: bytes in == bytes out + bytes buffered, under random
	// enqueue/dequeue interleavings.
	f := func(ops []uint8) bool {
		tmgr := New(Config{Ports: 1, QueueCapBytes: 400})
		in, out := 0, 0
		for _, op := range ops {
			if op%3 != 0 {
				n := 60 + int(op)
				if tmgr.Enqueue(mkPkt(n), 0, 0, 0, 0, 0) {
					in += n
				}
			} else if pkt, ok := tmgr.Dequeue(0, 0); ok {
				out += pkt.Len()
			}
		}
		return in == out+tmgr.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisciplineStrings(t *testing.T) {
	for _, d := range []Discipline{FIFO, StrictPriority, DRR, PIFOSched} {
		if d.String() == "" {
			t.Errorf("discipline %d unnamed", d)
		}
	}
}

// TestEnqueueNMatchesLoop is the differential pin for the bulk enqueue
// path: EnqueueN over a mixed batch (multiple ports, queues, ranks, and
// enough bytes to overflow one queue) must leave the TM in exactly the
// state a hand-written Enqueue loop produces — same admissions in the
// same order, same emitted event stream, same dequeue order afterwards.
func TestEnqueueNMatchesLoop(t *testing.T) {
	mkReqs := func() []EnqueueReq {
		var reqs []EnqueueReq
		for i := 0; i < 40; i++ {
			reqs = append(reqs, EnqueueReq{
				Pkt:      mkPkt(100 + 17*(i%7)),
				Port:     i % 2,
				Q:        i % 2,
				Rank:     uint64(40 - i), // descending: exercises PIFO ordering
				FlowHash: uint64(i * 2654435761),
			})
		}
		return reqs
	}
	type outcome struct {
		oks    []bool
		events []events.Event
		deqLen []int
	}
	drain := func(tmgr *TM) []int {
		var lens []int
		for port := 0; port < 2; port++ {
			for {
				pkt, ok := tmgr.Dequeue(port, 500)
				if !ok {
					break
				}
				lens = append(lens, len(pkt.Data))
			}
		}
		return lens
	}
	cfg := Config{Ports: 2, QueuesPerPort: 2, QueueCapBytes: 1500}

	var loop outcome
	{
		tmgr := New(cfg)
		tmgr.OnEvent = func(e events.Event) { loop.events = append(loop.events, e) }
		for _, r := range mkReqs() {
			loop.oks = append(loop.oks, tmgr.Enqueue(r.Pkt, r.Port, r.Q, r.Rank, r.FlowHash, 100))
		}
		loop.deqLen = drain(tmgr)
	}

	var bulk outcome
	admitted := 0
	{
		tmgr := New(cfg)
		tmgr.OnEvent = func(e events.Event) { bulk.events = append(bulk.events, e) }
		reqs := mkReqs()
		bulk.oks = make([]bool, len(reqs))
		admitted = tmgr.EnqueueN(reqs, 100, func(i int, ok bool) { bulk.oks[i] = ok })
		bulk.deqLen = drain(tmgr)
	}

	if len(loop.oks) != len(bulk.oks) {
		t.Fatalf("ok counts differ: loop %d, bulk %d", len(loop.oks), len(bulk.oks))
	}
	wantAdmitted := 0
	for i := range loop.oks {
		if loop.oks[i] {
			wantAdmitted++
		}
		if loop.oks[i] != bulk.oks[i] {
			t.Errorf("req %d: loop ok=%v, bulk ok=%v", i, loop.oks[i], bulk.oks[i])
		}
	}
	if admitted != wantAdmitted {
		t.Errorf("EnqueueN admitted = %d, want %d", admitted, wantAdmitted)
	}
	if wantAdmitted == len(loop.oks) {
		t.Error("no request was refused; the overflow path is uncovered")
	}
	if len(loop.events) != len(bulk.events) {
		t.Fatalf("event counts differ: loop %d, bulk %d", len(loop.events), len(bulk.events))
	}
	for i := range loop.events {
		if loop.events[i] != bulk.events[i] {
			t.Errorf("event %d differs: loop %+v, bulk %+v", i, loop.events[i], bulk.events[i])
		}
	}
	if len(loop.deqLen) != len(bulk.deqLen) {
		t.Fatalf("dequeue counts differ: loop %d, bulk %d", len(loop.deqLen), len(bulk.deqLen))
	}
	for i := range loop.deqLen {
		if loop.deqLen[i] != bulk.deqLen[i] {
			t.Errorf("dequeue %d: loop len %d, bulk len %d", i, loop.deqLen[i], bulk.deqLen[i])
		}
	}
}

// TestEnqueueNNilCallback pins that the callback is optional.
func TestEnqueueNNilCallback(t *testing.T) {
	tmgr := New(Config{Ports: 1, QueuesPerPort: 1, QueueCapBytes: 1000})
	n := tmgr.EnqueueN([]EnqueueReq{
		{Pkt: mkPkt(400), Port: 0, Q: 0, Rank: 1},
		{Pkt: mkPkt(400), Port: 0, Q: 0, Rank: 2},
		{Pkt: mkPkt(400), Port: 0, Q: 0, Rank: 3}, // overflows 1000B cap
	}, 10, nil)
	if n != 2 {
		t.Fatalf("admitted = %d, want 2", n)
	}
}
