package tm

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Snapshot serializes the traffic manager: every buffered packet (bytes
// plus metadata, in queue order), per-port discipline state, the PIFO
// heaps, and the lifetime counters.
func (t *TM) Snapshot(e *checkpoint.Encoder) {
	e.Int(len(t.ports))
	for pi := range t.ports {
		p := &t.ports[pi]
		e.Int(len(p.queues))
		for qi := range p.queues {
			q := &p.queues[qi]
			e.Int(q.len())
			for i := q.head; i < len(q.items); i++ {
				it := &q.items[i]
				e.BytesField(it.pkt.Data)
				e.Int(it.pkt.InPort)
				e.Bool(it.pkt.Gen)
				e.Int(it.pkt.Recirc)
				e.U64(it.flowHash)
				e.U64(it.rank)
				e.I64(int64(it.enqAt))
			}
		}
		for _, dq := range p.deficit {
			e.Int(dq)
		}
		e.Int(p.rr)
		e.Bool(p.granted)
		if p.pifo != nil {
			e.Int(len(p.pifo.h))
			for _, pe := range p.pifo.h {
				e.Int(pe.item.(pifoRef).q)
				e.U64(pe.rank)
				e.U64(pe.seq)
			}
			e.U64(p.pifo.seq)
		}
	}
	e.U64(t.seq)
	e.U64(t.enqueues)
	e.U64(t.dequeues)
	e.U64(t.drops)
	e.Int(t.maxBytes)
	e.Int(t.totalByte)
}

// Restore loads a snapshot into an identically configured TM. Buffered
// packets are rebuilt through pool (GetCopy), so the switch's recycling
// arena owns them exactly as it did in the original run.
func (t *TM) Restore(d *checkpoint.Decoder, pool *packet.Pool) {
	np := d.Int()
	if d.Err() != nil {
		return
	}
	if np != len(t.ports) {
		d.Fail(fmt.Errorf("tm: snapshot has %d ports, TM has %d", np, len(t.ports)))
		return
	}
	t.totalByte = 0
	for pi := range t.ports {
		p := &t.ports[pi]
		nq := d.Int()
		if d.Err() != nil {
			return
		}
		if nq != len(p.queues) {
			d.Fail(fmt.Errorf("tm: port %d: snapshot has %d queues, TM has %d", pi, nq, len(p.queues)))
			return
		}
		p.bytes = 0
		for qi := range p.queues {
			q := &p.queues[qi]
			n := d.Int()
			if d.Err() != nil {
				return
			}
			q.items = q.items[:0]
			q.head = 0
			q.bytes = 0
			for i := 0; i < n; i++ {
				data := d.BytesField()
				inPort := d.Int()
				gen := d.Bool()
				recirc := d.Int()
				if d.Err() != nil {
					return
				}
				pkt := pool.GetCopy(data, inPort)
				pkt.Gen = gen
				pkt.Recirc = recirc
				it := item{
					pkt:      pkt,
					flowHash: d.U64(),
					rank:     d.U64(),
					enqAt:    sim.Time(d.I64()),
				}
				q.push(it)
			}
			p.bytes += q.bytes
		}
		for i := range p.deficit {
			p.deficit[i] = d.Int()
		}
		p.rr = d.Int()
		p.granted = d.Bool()
		if p.pifo != nil {
			n := d.Int()
			if d.Err() != nil {
				return
			}
			p.pifo.h = p.pifo.h[:0]
			for i := 0; i < n; i++ {
				p.pifo.h = append(p.pifo.h, pifoEntry{
					item: pifoRef{q: d.Int()},
					rank: d.U64(),
					seq:  d.U64(),
				})
			}
			p.pifo.seq = d.U64()
		}
		t.totalByte += p.bytes
	}
	t.seq = d.U64()
	t.enqueues = d.U64()
	t.dequeues = d.U64()
	t.drops = d.U64()
	t.maxBytes = d.Int()
	t.totalByte = d.Int()
}
