// Package tm models the traffic manager of a programmable switch: per-port
// output queues with configurable capacity and scheduling discipline, a
// PIFO (Push-In-First-Out) queue for programmable scheduling, and — the
// part the paper cares about — event taps that announce buffer enqueue,
// dequeue, overflow, and underflow to the event-driven architecture.
package tm

import "container/heap"

// pifoEntry is one element of a PIFO: an opaque item with a rank. Lower
// ranks dequeue first; equal ranks dequeue in arrival order.
type pifoEntry struct {
	item any
	rank uint64
	seq  uint64
}

type pifoHeap []pifoEntry

func (h pifoHeap) Len() int { return len(h) }
func (h pifoHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h pifoHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pifoHeap) Push(x any)   { *h = append(*h, x.(pifoEntry)) }
func (h *pifoHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// PIFO is a Push-In-First-Out queue (Sivaraman et al., SIGCOMM 2016),
// the building block for programmable packet scheduling that the paper's
// Traffic Management application class combines with event-driven
// programming. Items are inserted with a rank computed by the data-plane
// program; the head is always the minimum-rank item.
type PIFO struct {
	h   pifoHeap
	seq uint64
	cap int
}

// NewPIFO returns a PIFO bounded to capacity items (0 = unbounded).
func NewPIFO(capacity int) *PIFO {
	return &PIFO{cap: capacity}
}

// Len returns the number of queued items.
func (p *PIFO) Len() int { return len(p.h) }

// Push inserts item with the given rank. It returns false when the PIFO
// is full.
func (p *PIFO) Push(item any, rank uint64) bool {
	if p.cap > 0 && len(p.h) >= p.cap {
		return false
	}
	heap.Push(&p.h, pifoEntry{item: item, rank: rank, seq: p.seq})
	p.seq++
	return true
}

// Pop removes and returns the minimum-rank item.
func (p *PIFO) Pop() (any, bool) {
	if len(p.h) == 0 {
		return nil, false
	}
	e := heap.Pop(&p.h).(pifoEntry)
	return e.item, true
}

// PeekRank returns the rank at the head without removing it.
func (p *PIFO) PeekRank() (uint64, bool) {
	if len(p.h) == 0 {
		return 0, false
	}
	return p.h[0].rank, true
}
