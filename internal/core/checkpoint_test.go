package core

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ckptRig mirrors the evsim scenario: a 4-port event-driven switch with
// the native forwarder program and one saturate generator per port. The
// construction path is identical for the original and the restored run;
// only whether the generators fire their first emission differs.
type ckptRig struct {
	sched *sim.Scheduler
	sw    *Switch
	gens  []*workload.Gen
}

func buildCkptRig(t testing.TB, start bool) *ckptRig {
	t.Helper()
	r := &ckptRig{sched: sim.NewScheduler()}
	r.sw = New(Config{Name: "ckpt", Ports: 4}, EventDriven(), r.sched)
	prog := pisa.NewProgram("fwd")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	r.sw.MustLoad(prog)
	rng := sim.NewRNG(1)
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(r.sched, rng.Split(), func(d []byte) { r.sw.Inject(port, d) })
		sc := workload.SaturateConfig{
			Flow: packet.Flow{
				Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
				SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP,
			},
			Rate: 10 * sim.Gbps, Load: 0.9, Size: 60, Until: 2 * sim.Millisecond,
		}
		if start {
			g.StartSaturate(sc)
		} else {
			g.PrepareSaturate(sc)
		}
		r.gens = append(r.gens, g)
	}
	return r
}

func (r *ckptRig) snapshot() []byte {
	e := checkpoint.NewEncoder()
	clk := r.sched.Clock()
	e.I64(int64(clk.Now))
	e.U64(clk.Seq)
	e.U64(clk.Fired)
	r.sw.Snapshot(e)
	for _, g := range r.gens {
		g.Snapshot(e)
	}
	return e.Bytes()
}

// restore loads a snapshot taken between Run calls: the cut line for
// DropFired is (now, seq counter) — every construction-replayed event
// ordered before it had already fired in the original run.
func (r *ckptRig) restore(t testing.TB, buf []byte) {
	t.Helper()
	d := checkpoint.NewDecoder(buf)
	var clk sim.ClockState
	clk.Now = sim.Time(d.I64())
	clk.Seq = d.U64()
	clk.Fired = d.U64()
	r.sw.Restore(d)
	for _, g := range r.gens {
		g.Restore(d)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("restore left %d bytes unread", d.Remaining())
	}
	r.sched.DropFired(clk.Now, clk.Seq)
	r.sched.RestoreClock(clk)
}

// TestSwitchCheckpointResumeIdentical is the core-level differential
// pin: run to T/2, snapshot, pour the snapshot into an identically
// constructed switch, run both to T, and require identical stats,
// emission counters, and register state.
func TestSwitchCheckpointResumeIdentical(t *testing.T) {
	const half, full = sim.Millisecond, 2 * sim.Millisecond

	a := buildCkptRig(t, true)
	a.sched.Run(half)
	snap := a.snapshot()
	a.sched.Run(full + 500*sim.Microsecond)

	b := buildCkptRig(t, false)
	b.restore(t, snap)
	if b.sched.Now() != half {
		t.Fatalf("restored clock at %v, want %v", b.sched.Now(), half)
	}
	b.sched.Run(full + 500*sim.Microsecond)

	if a.sw.Stats() != b.sw.Stats() {
		t.Errorf("stats diverge:\noriginal: %+v\nresumed:  %+v", a.sw.Stats(), b.sw.Stats())
	}
	for i := range a.gens {
		if a.gens[i].SentPackets != b.gens[i].SentPackets || a.gens[i].SentBytes != b.gens[i].SentBytes {
			t.Errorf("gen %d: sent %d/%d bytes, resumed %d/%d",
				i, a.gens[i].SentPackets, a.gens[i].SentBytes, b.gens[i].SentPackets, b.gens[i].SentBytes)
		}
	}
	if a.sched.Clock() != b.sched.Clock() {
		t.Errorf("scheduler counters diverge: original %+v, resumed %+v", a.sched.Clock(), b.sched.Clock())
	}
	aocc := a.sw.Program().Register("occ")
	bocc := b.sw.Program().Register("occ")
	for i := uint32(0); i < 8; i++ {
		if aocc.True(i) != bocc.True(i) {
			t.Errorf("occ[%d] = %d, resumed %d", i, aocc.True(i), bocc.True(i))
		}
	}
	if a.sw.Stats().TxPackets == 0 {
		t.Fatal("scenario forwarded nothing; differential is vacuous")
	}
}

// TestSwitchRestoreZeroAlloc verifies restore rebuilds the pooled object
// graph without breaking the zero-allocation steady state: a restored
// switch's forward path must not allocate, exactly like a warm one
// (TestSwitchForwardZeroAlloc).
func TestSwitchRestoreZeroAlloc(t *testing.T) {
	a := buildCkptRig(t, true)
	a.sched.Run(sim.Millisecond) // warm pools and rings past steady state
	snap := a.snapshot()

	b := buildCkptRig(t, false)
	b.restore(t, snap)
	step := func() {
		b.sched.Run(b.sched.Now() + 10*sim.Microsecond)
	}
	step() // settle the first post-restore window
	before := b.sw.Stats().TxPackets
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("restored switch allocates %v per steady-state window, want 0", avg)
	}
	if b.sw.Stats().TxPackets == before {
		t.Fatal("nothing forwarded during the measurement")
	}
}
