package core

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/self"
	"repro/internal/tm"
)

// WireOverhead is the per-frame wire overhead in bytes beyond the frame
// data the simulator carries: 4 (FCS) + 8 (preamble) + 12 (inter-frame
// gap). It determines both serialization times and the pipeline's
// minimum-packet cycle budget.
const WireOverhead = 24

// minWireBytes is the wire footprint of a minimum-size frame.
const minWireBytes = packet.MinFrameLen + WireOverhead // 84 bytes = 64B frame + 20B overhead

// Config sizes a Switch.
type Config struct {
	// Name identifies the switch in traces and stats.
	Name string
	// Ports is the number of full-duplex ports (default 4, as on the
	// NetFPGA SUME).
	Ports int
	// LineRate is the per-port rate (default 10 Gb/s).
	LineRate sim.Rate
	// Overspeed is the pipeline clock multiplier relative to the exact
	// aggregate minimum-packet rate. 1.0 means one slot per possible
	// minimum packet; modern switch chips run slightly faster than line
	// rate (paper §4), so the default is 1.1.
	Overspeed float64
	// QueueCapBytes bounds each output queue (default 256 KiB).
	QueueCapBytes int
	// QueuesPerPort is output queues per port (default 1).
	QueuesPerPort int
	// Discipline is the TM scheduling discipline.
	Discipline tm.Discipline
	// EventQueueDepth bounds each event FIFO between a source and the
	// Event Merger (default 512).
	EventQueueDepth int
	// PipelineLatency is the ingress-pipeline depth in cycles: the delay
	// between a slot entering the pipeline and its packet reaching the
	// traffic manager (default 16 stages).
	PipelineLatency int
	// MaxEventsPerSlot bounds how many events the merger can attach to
	// one pipeline slot — the metadata bus width of paper §4 ("the
	// pipeline is wide enough to carry all the events"). 0 means one
	// event of every kind fits (a full-width bus).
	MaxEventsPerSlot int
	// NoPiggyback disables the Event Merger's defining trick: events no
	// longer ride packet slots, so every event consumes a dedicated
	// (empty-packet) slot that competes with packets for the pipeline.
	// Only for the ablation; the paper's design always piggybacks.
	NoPiggyback bool
	// MergerPriority overrides the order in which the Event Merger
	// drains event FIFOs into a slot (default: the package-level
	// MergerPriority). Setting it per switch keeps concurrent
	// simulations independent.
	MergerPriority []events.Kind
	// EventOverflow overrides the overflow policy of individual event
	// FIFOs. Kinds not present get the defaults: LinkStatusChange
	// coalesces per port (a flap burst collapses to each port's final
	// state), every other kind drops the newest event when full.
	EventOverflow map[events.Kind]events.OverflowPolicy
	// NoDrainFastForward disables the idle-cycle drain fast-forward for
	// this switch: drain-only stretches then run cycle-by-cycle on the
	// scheduler lane. Differential tests use it to pin the fast path
	// against the slow one; results are identical either way.
	NoDrainFastForward bool
	// NoBurst disables the burst slot loop for this switch: every
	// pipeline slot then costs one full scheduler dispatch (lane arm,
	// next-event scan, lane fire), exactly as before bursting existed.
	// The per-frame path is the burst path's differential oracle; results
	// are byte-identical either way.
	NoBurst bool
	// BurstSlots caps how many consecutive pipeline slots one cycle-lane
	// firing may execute before returning to the scheduler (default
	// DefaultBurstSlots). The cap only bounds latency of the in-callback
	// loop; any value produces identical simulation output.
	BurstSlots int
}

// ForceSlowDrain globally disables the drain fast-forward (as if every
// switch were built with NoDrainFastForward). Differential and
// determinism tests flip it to prove the batched drain replays the
// cycle-by-cycle path exactly. Not for concurrent mutation: set it before
// building switches.
var ForceSlowDrain bool

// ForceNoBurst globally disables burst processing (as if every switch
// were built with NoBurst), and internal/netsim reads it when deciding
// whether links batch their arrival deliveries. evbench -burst=0 and the
// burst differential tests flip it to prove the burst datapath replays
// the per-frame path exactly. Not for concurrent mutation: set it before
// building switches or networks.
var ForceNoBurst bool

// DefaultBurstSlots is the default per-wakeup slot budget of the burst
// loop (Config.BurstSlots). evbench -burst=N overrides it process-wide.
var DefaultBurstSlots = 64

// BurstEngageDepth is how much queued work a wake must hold before the
// burst paths engage their bracketing (aux-lane disarm plus continuation
// proofs). Below the threshold the switch runs the plain single-slot /
// single-delivery path — on lightly loaded fabrics the bracket costs
// more than it saves. The gate reads only deterministic simulation state
// (queue depths), and the single-slot path is the burst datapath's
// byte-identical oracle, so engagement never changes output.
var BurstEngageDepth = 2

func (c Config) withDefaults() Config {
	if c.Ports <= 0 {
		c.Ports = 4
	}
	if c.LineRate <= 0 {
		c.LineRate = 10 * sim.Gbps
	}
	if c.Overspeed <= 0 {
		c.Overspeed = 1.1
	}
	if c.QueueCapBytes <= 0 {
		c.QueueCapBytes = 256 << 10
	}
	if c.QueuesPerPort <= 0 {
		c.QueuesPerPort = 1
	}
	if c.EventQueueDepth <= 0 {
		c.EventQueueDepth = 512
	}
	if c.PipelineLatency <= 0 {
		c.PipelineLatency = 16
	}
	if c.MergerPriority == nil {
		c.MergerPriority = MergerPriority
	}
	return c
}

// MergerPriority is the order in which the Event Merger drains event
// FIFOs into a slot: most urgent first (paper §4 raises exactly this
// scheduling question; this is the default the prototype uses).
var MergerPriority = []events.Kind{
	events.BufferDequeue,
	events.BufferEnqueue,
	events.BufferOverflow,
	events.BufferUnderflow,
	events.PacketTransmitted,
	events.LinkStatusChange,
	events.TimerExpiration,
	events.ControlPlaneTriggered,
	events.UserEvent,
}

// Stats counts a switch's lifetime activity.
type Stats struct {
	RxPackets, RxBytes uint64
	TxPackets, TxBytes uint64
	RxDropped          uint64 // arrived on a downed link
	TxDroppedLinkDown  uint64
	PipelineDrops      uint64 // dropped by the program's decision
	Cycles             uint64
	PacketSlots        uint64 // slots carrying a real packet
	EmptySlots         uint64 // injected empty packets (metadata carriers)
	DrainSlots         uint64 // cycles run purely to drain aggregation
	EventsMerged       [events.NumKinds]uint64
	EventsDropped      [events.NumKinds]uint64 // FIFO-full losses
	EventsCoalesced    [events.NumKinds]uint64 // merged into a pending same-port event
	EventsShed         [events.NumKinds]uint64 // evicted oldest under DropOldest pressure
	Recirculated       uint64
	Generated          uint64
}

// SlotInfo describes one executed pipeline slot for tracing.
type SlotInfo struct {
	Cycle   uint64
	At      sim.Time
	PktKind events.Kind // IngressPacket/RecirculatedPacket/GeneratedPacket
	PktLen  int         // 0 for empty metadata slots
	Empty   bool
	Events  []events.Kind // non-packet events merged into the slot
}

// genTemplate is a periodic packet-generator configuration.
type genTemplate struct {
	every  sim.Time
	make   func(seq uint64) ([]byte, int) // returns frame and suggested port (-1: route in pipeline)
	seq    uint64
	ticker *sim.Ticker
}

// Switch is one switch instance: the datapath of Figure 4 attached to a
// scheduler. Create with New, load a Program with Load, feed packets with
// Inject (or connect links in internal/netsim), then run the scheduler.
type Switch struct {
	cfg   Config
	arch  *Arch
	sched *sim.Scheduler
	prog  *pisa.Program

	cycleTime   sim.Time
	nextCycleAt sim.Time
	cycleIdx    uint64
	cycleLane   *sim.Lane
	noFF        bool
	noBurst     bool
	burstSlots  int
	// inBurst is set while the burst slot loop (or the aux lane's inline
	// drain) is executing. While set, the aux lane is kept disarmed and
	// conveyor mutations skip the arm-if-earlier bookkeeping: the loop
	// consults auxMin directly with each entry's exact (at, seq), so the
	// per-entry lane churn would be overwritten before anything could
	// observe it. Every exit path re-establishes the armed-at-minimum
	// invariant with auxArm before control returns to the scheduler, and
	// fastForwardDrain bounds its stretch by auxMin explicitly so the
	// hidden lane cannot widen the drain horizon.
	inBurst bool

	// slotNow/slotCycle snapshot the (time, cycle) pair at the top of the
	// last runCycle. During a drain fast-forward the registers' cycles run
	// ahead of the scheduler clock; telemetry reconstructs each drained
	// delta's virtual timestamp as slotNow + (regCycle-slotCycle)*cycleTime.
	slotNow   sim.Time
	slotCycle uint64

	// pool recycles every packet the switch materializes (rx copies,
	// generated frames): the steady-state forward path allocates nothing.
	pool *packet.Pool

	rxq        [][]*packet.Packet
	rxHead     []int
	rxRR       int
	rxPending  int // packets queued across rxq (kept so work checks are O(1))
	recirc     []*packet.Packet
	lastRecirc bool
	genq       []*packet.Packet

	evq [events.NumKinds]*events.Queue
	// evMask has bit k set while evq[k] is non-empty; prioMask has bit k
	// set for kinds the merger actually drains (cfg.MergerPriority). The
	// pair makes the per-slot event scan and the wake predicate O(1) when
	// no events are pending — the common case in burst stretches.
	evMask   uint32
	prioMask uint32

	// tmReqs is the scratch vector for bulk TM enqueues (finishSlot's
	// generated-packet fan-out); tmPkts parallels it. tmResult is the
	// per-item reaction, bound once so EnqueueN calls allocate nothing.
	tmReqs   []tm.EnqueueReq
	tmPkts   []*packet.Packet
	tmResult func(i int, ok bool)

	tmgr   *tm.TM
	linkUp []bool
	txBusy []bool
	txPkt  []*packet.Packet // packet on the wire per port
	evSeq  uint64

	// The conveyor: the switch's own future work — pipeline-latency
	// deliveries to the TM and per-port tx completions — kept out of the
	// scheduler's heap. Every entry is stamped with the exact (at, seq)
	// coordinates the equivalent scheduler event would have had (the seq
	// is drawn from the shared counter at schedule time), and the aux
	// lane is armed at the earliest entry's coordinates, so firing order
	// against heap events, wire arrivals, and other lanes is byte-
	// identical to per-event scheduling. The burst loop fires due entries
	// inline, skipping the per-event dispatch entirely.
	pipeQ       []pipeEntry // FIFO in (at, seq): slot → TM deliveries
	pipeHead    int         // index of the conveyor's earliest entry
	txDoneAt    []sim.Time  // per-port tx-complete instant
	txDoneSeq   []uint64    // per-port tx-complete sequence number
	txDonePend  []bool      // per-port tx-complete pending
	txPendCount int         // how many txDonePend entries are set
	auxLane     *sim.Lane   // fires the earliest conveyor entry

	emptyPkt packet.Packet   // reused metadata-carrier slot packet
	egrFree  []*pisa.Context // free list of egress contexts (pump re-enters)

	timers []*sim.Ticker
	gens   []*genTemplate

	ctx pisa.Context

	// OnTransmit, when set, receives each packet as its last byte
	// leaves the given port (netsim uses it to drive links).
	OnTransmit func(port int, pkt *packet.Packet)

	// OnDrop, when set, observes packets the switch discards with the
	// reason ("tm-overflow", "pipeline-drop", "link-down", ...).
	OnDrop func(pkt *packet.Packet, reason string)

	// OnSlot, when set, observes every executed pipeline slot (cycle
	// trace). It costs a call per cycle; leave nil in experiments.
	OnSlot func(info SlotInfo)

	stats Stats

	// tel is the switch's telemetry probe (nil until EnableTelemetry).
	// Every probe point below is a nil-guarded field access, so the
	// disabled path stays allocation- and branch-predictor-friendly.
	tel        *telemetry.SwitchProbe
	telCol     *telemetry.Collector
	telSampler *sim.Ticker
}

// New builds a switch on the given scheduler with the given architecture.
func New(cfg Config, arch *Arch, sched *sim.Scheduler) *Switch {
	cfg = cfg.withDefaults()
	s := &Switch{cfg: cfg, arch: arch, sched: sched, pool: packet.NewPool()}
	s.noFF = cfg.NoDrainFastForward || ForceSlowDrain
	s.noBurst = cfg.NoBurst || ForceNoBurst
	s.burstSlots = cfg.BurstSlots
	if s.burstSlots <= 0 {
		s.burstSlots = DefaultBurstSlots
	}
	if s.noBurst || s.burstSlots < 1 {
		s.burstSlots = 1
	}
	for _, k := range cfg.MergerPriority {
		s.prioMask |= 1 << uint(k)
	}

	perPortMin := cfg.LineRate.ByteTime(minWireBytes)
	s.cycleTime = sim.Time(float64(perPortMin) / (float64(cfg.Ports) * cfg.Overspeed))
	if s.cycleTime < 1 {
		s.cycleTime = 1
	}

	s.cycleLane = sched.NewLane(s.runCycle)
	s.auxLane = sched.NewLane(s.auxRun)
	s.rxq = make([][]*packet.Packet, cfg.Ports)
	s.rxHead = make([]int, cfg.Ports)
	s.linkUp = make([]bool, cfg.Ports)
	s.txBusy = make([]bool, cfg.Ports)
	s.txPkt = make([]*packet.Packet, cfg.Ports)
	s.txDoneAt = make([]sim.Time, cfg.Ports)
	s.txDoneSeq = make([]uint64, cfg.Ports)
	s.txDonePend = make([]bool, cfg.Ports)
	for i := range s.linkUp {
		s.linkUp[i] = true
	}
	for k := 0; k < events.NumKinds; k++ {
		kind := events.Kind(k)
		s.evq[k] = events.NewQueue(kind, cfg.EventQueueDepth)
		pol, ok := cfg.EventOverflow[kind]
		if !ok && kind == events.LinkStatusChange {
			pol = events.CoalescePort
		}
		s.evq[k].SetPolicy(pol)
	}
	s.tmgr = tm.New(tm.Config{
		Ports:         cfg.Ports,
		QueuesPerPort: cfg.QueuesPerPort,
		QueueCapBytes: cfg.QueueCapBytes,
		Discipline:    cfg.Discipline,
	})
	s.tmgr.OnEvent = s.tmEvent
	s.tmResult = s.bulkEnqueueResult
	return s
}

// bulkEnqueueResult is finishSlot's per-item EnqueueN reaction: admitted
// packets start their port's transmitter, rejected ones take the same
// drop path enqueueOut would have taken.
func (s *Switch) bulkEnqueueResult(i int, ok bool) {
	if ok {
		s.pump(s.tmReqs[i].Port)
		return
	}
	pkt := s.tmPkts[i]
	if s.OnDrop != nil {
		s.OnDrop(pkt, "tm-overflow")
	}
	pkt.Release()
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.cfg.Name }

// Config returns the effective configuration.
func (s *Switch) Config() Config { return s.cfg }

// Scheduler returns the scheduler driving this switch. In a partitioned
// simulation (sim.Partition) it identifies the switch's domain: every
// event the switch schedules — pipeline cycles, timers, generators,
// transmit completions — lands on this scheduler, so a switch built on a
// partition domain runs entirely within that domain. The switch keeps no
// cross-switch mutable state; all inter-switch interaction flows through
// netsim links, which is what makes domain-parallel execution safe.
func (s *Switch) Scheduler() *sim.Scheduler { return s.sched }

// Arch returns the switch's architecture description.
func (s *Switch) Arch() *Arch { return s.arch }

// CycleTime returns the pipeline clock period.
func (s *Switch) CycleTime() sim.Time { return s.cycleTime }

// TM exposes the traffic manager (monitors read occupancancies from it).
func (s *Switch) TM() *tm.TM { return s.tmgr }

// Program returns the loaded program (nil before Load).
func (s *Switch) Program() *pisa.Program { return s.prog }

// Stats returns a snapshot of the switch's counters.
func (s *Switch) Stats() Stats { return s.stats }

// Load installs a program after validating it against the architecture.
func (s *Switch) Load(p *pisa.Program) error {
	if err := s.arch.Validate(p); err != nil {
		return err
	}
	s.prog = p
	s.instrumentRegisters()
	return nil
}

// MustLoad is Load that panics on error, for experiment setup code.
func (s *Switch) MustLoad(p *pisa.Program) {
	if err := s.Load(p); err != nil {
		panic(err)
	}
}

// --- event sources -------------------------------------------------------

// tmEvent receives traffic-manager events and routes them into the
// merger's FIFOs when the architecture exposes them and the program
// subscribes.
func (s *Switch) tmEvent(e events.Event) {
	s.pushEvent(e)
}

func (s *Switch) pushEvent(e events.Event) {
	if !s.arch.Supports(e.Kind) || s.prog == nil || !s.prog.Handles(e.Kind) {
		return
	}
	e.Seq = s.evSeq
	s.evSeq++
	out := s.evq[e.Kind].Offer(e)
	// Whatever the outcome, the FIFO is non-empty now: stored/coalesced
	// added or updated state, and a drop means it was already full.
	s.evMask |= 1 << uint(e.Kind)
	if s.tel != nil {
		s.tel.ObserveOffer(s.sched.Now(), e, out)
	}
	switch out {
	case events.Coalesced:
		s.stats.EventsCoalesced[e.Kind]++
	case events.StoredShed:
		s.stats.EventsShed[e.Kind]++
	case events.Dropped:
		s.stats.EventsDropped[e.Kind]++
		return
	}
	s.wake()
}

// InjectEvent offers an event directly to the merger's FIFOs, bypassing
// the hardware sources. It models a misbehaving or saturated event
// source; internal/faults uses it for event-queue pressure storms. The
// event is subject to the same architecture/program gating and overflow
// policy as any other, and ok reports whether its state survived
// (stored or coalesced).
func (s *Switch) InjectEvent(e events.Event) (ok bool) {
	if !s.arch.Supports(e.Kind) || s.prog == nil || !s.prog.Handles(e.Kind) {
		return false
	}
	before := s.evq[e.Kind].Drops()
	s.pushEvent(e)
	return s.evq[e.Kind].Drops() == before
}

// Inject delivers a fully received frame to an input port (the caller
// models wire timing). Frames arriving on a downed link are lost. The
// frame bytes are copied into a pooled packet before Inject returns, so
// the caller is free to reuse its buffer.
func (s *Switch) Inject(port int, data []byte) {
	if port < 0 || port >= s.cfg.Ports {
		panic(fmt.Sprintf("core: inject on invalid port %d", port))
	}
	if !s.linkUp[port] {
		s.stats.RxDropped++
		return
	}
	s.stats.RxPackets++
	s.stats.RxBytes += uint64(len(data))
	s.rxq[port] = append(s.rxq[port], s.pool.GetCopy(data, port))
	s.rxPending++
	s.wake()
}

// InjectBurst delivers a vector of fully received frames to one input
// port, in order, as if Inject had been called once per frame at the
// same instant. It is the switch half of the burst datapath: one wire
// activation hands over a whole arrival burst, one wake arms the
// pipeline. Frames arriving on a downed link are lost. Each frame is
// copied into a pooled packet before InjectBurst returns.
func (s *Switch) InjectBurst(port int, frames [][]byte) {
	if port < 0 || port >= s.cfg.Ports {
		panic(fmt.Sprintf("core: inject on invalid port %d", port))
	}
	if !s.linkUp[port] {
		s.stats.RxDropped += uint64(len(frames))
		return
	}
	for _, data := range frames {
		s.stats.RxPackets++
		s.stats.RxBytes += uint64(len(data))
		s.rxq[port] = append(s.rxq[port], s.pool.GetCopy(data, port))
	}
	s.rxPending += len(frames)
	s.wake()
}

// ConfigureTimer arms hardware timer id to fire TimerExpiration events
// with the given period. It errors if the architecture lacks timers or
// the id is out of range. Reconfiguring an armed timer replaces it.
func (s *Switch) ConfigureTimer(id int, period sim.Time) error {
	if s.arch.Timers == 0 {
		return fmt.Errorf("core: architecture %q has no timer block", s.arch.Name)
	}
	if id < 0 || id >= s.arch.Timers {
		return fmt.Errorf("core: timer id %d out of range (%d timers)", id, s.arch.Timers)
	}
	for len(s.timers) <= id {
		s.timers = append(s.timers, nil)
	}
	if s.timers[id] != nil {
		s.timers[id].Stop()
	}
	s.timers[id] = s.sched.Every(period, func() {
		s.pushEvent(events.Event{
			Kind: events.TimerExpiration, When: s.sched.Now(), TimerID: id, Port: -1,
		})
	})
	return nil
}

// StopTimer disarms timer id.
func (s *Switch) StopTimer(id int) {
	if id >= 0 && id < len(s.timers) && s.timers[id] != nil {
		s.timers[id].Stop()
		s.timers[id] = nil
	}
}

// AddGenerator configures the packet generator to emit a frame every
// period. mk builds each frame and names the output port, or -1 to let
// the pipeline route it (the frame then traverses the pipeline as a
// GeneratedPacket event). The returned frame is copied into a pooled
// packet before the next tick, so mk may reuse a scratch buffer. It
// errors when the architecture has no generator block.
func (s *Switch) AddGenerator(period sim.Time, mk func(seq uint64) (data []byte, port int)) error {
	if !s.arch.Generator {
		return fmt.Errorf("core: architecture %q has no packet generator", s.arch.Name)
	}
	g := &genTemplate{every: period, make: mk}
	s.gens = append(s.gens, g)
	g.ticker = s.sched.Every(period, func() {
		data, port := g.make(g.seq)
		g.seq++
		if data == nil {
			return
		}
		s.stats.Generated++
		pkt := s.pool.GetCopy(data, -1)
		pkt.Gen = true
		if port >= 0 {
			// Direct injection to the TM, as when the generator is
			// configured with a fixed output port.
			s.enqueueOut(pkt, port, 0, 0, flowHashOf(data))
			return
		}
		s.genq = append(s.genq, pkt)
		s.wake()
	})
	return nil
}

// StopGenerators halts every configured packet generator.
func (s *Switch) StopGenerators() {
	for _, g := range s.gens {
		g.ticker.Stop()
	}
	s.gens = nil
}

// SetLink changes a port's link status, raising a LinkStatusChange event.
func (s *Switch) SetLink(port int, up bool) {
	if s.linkUp[port] == up {
		return
	}
	s.linkUp[port] = up
	s.pushEvent(events.Event{
		Kind: events.LinkStatusChange, When: s.sched.Now(), Port: port, Up: up,
	})
	if up {
		s.pump(port)
	}
}

// LinkIsUp reports a port's link status.
func (s *Switch) LinkIsUp(port int) bool { return s.linkUp[port] }

// TriggerControlEvent injects a ControlPlaneTriggered event carrying an
// opaque payload (the control plane's side channel into the data plane).
func (s *Switch) TriggerControlEvent(data uint64) {
	s.pushEvent(events.Event{
		Kind: events.ControlPlaneTriggered, When: s.sched.Now(), Data: data, Port: -1,
	})
}

// --- the event merger and pipeline ---------------------------------------

func (s *Switch) havePacketWork() bool {
	return s.rxPending > 0 || len(s.recirc) > 0 || len(s.genq) > 0
}

// packetBacklog is the number of packets queued for pipeline slots; the
// burst loop engages only when it promises more than one slot of inline
// work (see BurstEngageDepth).
func (s *Switch) packetBacklog() int {
	return s.rxPending + len(s.recirc) + len(s.genq)
}

// conveyorDepth is the number of pending conveyor entries (pipeline-
// latency deliveries plus tx completions); the aux lane's inline burst
// continuation engages only when at least BurstEngageDepth entries are
// queued.
func (s *Switch) conveyorDepth() int {
	return len(s.pipeQ) - s.pipeHead + s.txPendCount
}

func (s *Switch) haveEventWork() bool {
	return s.evMask&s.prioMask != 0
}

func (s *Switch) haveDrainWork() bool {
	if s.prog == nil {
		return false
	}
	for _, r := range s.prog.Registers() {
		if r.Backlog() > 0 {
			return true
		}
	}
	return false
}

// wake arms the next pipeline cycle if work is pending. The cycle runs
// on a scheduler lane: re-arming is two field writes, so bursts of
// back-to-back cycles never touch the event heap and never allocate.
func (s *Switch) wake() {
	if s.cycleLane.Armed() {
		return
	}
	if !s.havePacketWork() && !s.haveEventWork() && !s.haveDrainWork() {
		return
	}
	at := s.nextCycleAt
	if now := s.sched.Now(); at < now {
		at = now
	}
	s.cycleLane.ArmAt(at)
}

// popPacket selects the slot's packet by merger priority: recirculated,
// then input ports (round-robin), then generated. Recirculated packets
// get at most every other slot when fresh arrivals are waiting, bounding
// the recirculation bandwidth the way real recirculation ports do (a
// program that recirculates forever cannot starve the wire).
func (s *Switch) popPacket() (*packet.Packet, events.Kind, bool) {
	rxPending := s.rxPending > 0
	if len(s.recirc) > 0 && !(s.lastRecirc && rxPending) {
		pkt := s.recirc[0]
		s.recirc = s.recirc[1:]
		s.lastRecirc = true
		return pkt, events.RecirculatedPacket, true
	}
	s.lastRecirc = false
	if rxPending {
		for i := 0; i < s.cfg.Ports; i++ {
			p := (s.rxRR + i) % s.cfg.Ports
			if s.rxHead[p] < len(s.rxq[p]) {
				pkt := s.rxq[p][s.rxHead[p]]
				s.rxq[p][s.rxHead[p]] = nil
				s.rxHead[p]++
				if s.rxHead[p] == len(s.rxq[p]) {
					s.rxq[p] = s.rxq[p][:0]
					s.rxHead[p] = 0
				}
				s.rxRR = (p + 1) % s.cfg.Ports
				s.rxPending--
				return pkt, events.IngressPacket, true
			}
		}
	}
	if len(s.genq) > 0 {
		pkt := s.genq[0]
		s.genq = s.genq[1:]
		return pkt, events.GeneratedPacket, true
	}
	return nil, 0, false
}

// runCycle fires on the cycle lane. It executes one pipeline slot, then —
// the burst datapath — keeps executing consecutive slots inside the same
// scheduler callback for as long as it can prove the scheduler would have
// done nothing in between: work is still pending, no event (packet
// arrival, tx completion, timer, partition barrier) is due at or before
// the next slot's instant, and the next slot sits inside the active run
// horizon. Each proven slot advances the clock with sim.AdvanceTo and
// runs inline, skipping the lane re-arm, next-event scan, and lane fire
// that the per-slot path pays per cycle. The slot bodies are identical,
// every slot still observes the correct Now() and cycle index, and the
// burst stops the moment the proof fails, so all output is byte-identical
// to the NoBurst per-slot path (the differential oracle); only absolute —
// never relative — scheduler sequence numbers differ. A pure drain slot
// ends the burst: it already fast-forwards the whole drain stretch.
//
// Telemetry cycle counts are batched into one probe update per burst;
// per-slot trace emissions and outcome counters are unchanged, and no
// sampler can observe the counters mid-callback, so the batching is
// invisible in all telemetry output.
func (s *Switch) runCycle() {
	slots := uint64(0)
	stop := false
	// Adaptive engagement: the bracket (aux-lane disarm/re-arm) and the
	// per-slot continuation proofs only pay for themselves when this wake
	// plausibly holds several back-to-back slots. A light wake — fewer
	// than BurstEngageDepth packets queued — runs the plain single-slot
	// path, which is the per-event oracle, so the gate can depend on any
	// deterministic simulation state without affecting output.
	budget := s.burstSlots
	if budget > 1 && s.packetBacklog() < BurstEngageDepth {
		budget = 1
	}
	if budget > 1 {
		s.inBurst = true
		s.auxLane.Disarm()
	}
	for n := 1; ; n++ {
		drained := s.runSlot()
		slots++
		if drained || n >= budget {
			break
		}
		if !s.havePacketWork() && !s.haveEventWork() && !s.haveDrainWork() {
			break
		}
		next := s.nextCycleAt
		limit, strict := s.sched.RunBound()
		if next > limit || (strict && next == limit) {
			break
		}
		// Deliver the switch's own conveyor work due before (or at) the
		// next slot inline: each pipeline-latency delivery or tx completion
		// whose (at, seq) precedes everything the scheduler holds is
		// exactly the event the scheduler would fire next, so running it
		// here — with the clock advanced to its instant — reproduces the
		// per-event schedule while skipping the dispatch. An entry at the
		// slot's own instant drew its seq at least one cycle earlier than
		// any arm of the cycle lane, so conveyor-before-slot is the heap
		// order too. The moment something else precedes (another switch's
		// lane, a wire arrival, a timer) or the run horizon intervenes, the
		// burst ends and the scheduler resumes ordinary dispatch.
		for {
			at, seq, txPort, ok := s.auxMin()
			if !ok || at > next {
				break
			}
			if at > limit || (strict && at == limit) || s.sched.NextBefore(at, seq) {
				stop = true
				break
			}
			s.sched.AdvanceTo(at)
			s.auxFire(txPort)
		}
		if stop {
			break
		}
		if s.cycleLane.Armed() {
			// A wake during this slot or an inline conveyor delivery armed
			// our own cycle lane for the next slot — the firing this loop
			// is about to perform inline. Take the arm over: with nothing
			// in the scheduler preceding its exact (at, seq), disarming and
			// running the slot here reproduces the lane dispatch verbatim.
			lat, lseq, _ := s.cycleLane.ArmedAt()
			if lat != next || s.sched.NextBefore(lat, lseq) {
				break
			}
			s.cycleLane.Disarm()
		} else if na, ok := s.sched.NextAt(); ok && na <= next {
			break
		}
		s.sched.AdvanceTo(next)
	}
	if s.inBurst {
		s.inBurst = false
		s.auxArm()
	}
	if s.tel != nil {
		s.tel.Cycles.Add(slots)
	}
	if self.On() {
		self.BurstOcc.Observe(slots)
	}
	s.wake()
}

// runSlot executes one pipeline cycle: the Event Merger forms a slot
// (packet plus up to one event per kind), the program's handlers run, and
// the aggregation registers drain with leftover bandwidth. It reports
// whether the slot was a pure drain cycle (which fast-forwards the whole
// drain stretch and therefore terminates a burst).
func (s *Switch) runSlot() (drained bool) {
	now := s.sched.Now()
	s.cycleIdx++
	s.nextCycleAt = now + s.cycleTime
	s.stats.Cycles++

	cycle := s.cycleIdx
	s.slotNow, s.slotCycle = now, cycle
	if s.prog != nil {
		s.prog.Tick(cycle)
	}

	// Gather this slot's events: at most one per kind, priority order.
	// In the ablation's no-piggyback mode, a slot with pending events
	// carries only events (an empty packet), and packets wait.
	var slotEvents [events.NumKinds]events.Event
	var nEvents int
	var kinds [events.NumKinds]events.Kind
	gatherEvents := func() {
		if s.evMask&s.prioMask == 0 {
			return
		}
		maxEv := s.cfg.MaxEventsPerSlot
		for _, k := range s.cfg.MergerPriority {
			if maxEv > 0 && nEvents >= maxEv {
				break
			}
			if s.evMask&(1<<uint(k)) == 0 {
				continue
			}
			if e, ok := s.evq[k].Pop(); ok {
				slotEvents[nEvents] = e
				kinds[nEvents] = k
				nEvents++
			}
			if s.evq[k].Len() == 0 {
				s.evMask &^= 1 << uint(k)
			}
		}
	}

	var pkt *packet.Packet
	var pktKind events.Kind
	var havePkt bool
	if s.cfg.NoPiggyback {
		gatherEvents()
		if nEvents == 0 {
			pkt, pktKind, havePkt = s.popPacket()
		}
	} else {
		pkt, pktKind, havePkt = s.popPacket()
		gatherEvents()
	}

	switch {
	case havePkt:
		s.stats.PacketSlots++
		if s.tel != nil {
			s.tel.ObserveSlotStart(now, cycle, pktKind, true)
		}
	case nEvents > 0:
		// No packet on the wire: the merger injects an empty packet to
		// carry the event metadata (paper §5). The carrier is reused
		// across slots — it never leaves the pipeline (finishSlot skips
		// packet-less slots), so one struct per switch suffices.
		s.emptyPkt = packet.Packet{Empty: true, InPort: -1}
		pkt = &s.emptyPkt
		s.stats.EmptySlots++
		if s.tel != nil {
			s.tel.ObserveSlotStart(now, cycle, pktKind, false)
		}
	default:
		// Pure drain cycle: spare bandwidth applies aggregated updates.
		s.stats.DrainSlots++
		if s.tel != nil {
			s.tel.DrainSlots.Inc()
		}
		if s.prog != nil {
			s.prog.EndCycle()
			if !s.noFF {
				s.fastForwardDrain(now)
			}
		}
		return true
	}

	if s.OnSlot != nil {
		info := SlotInfo{Cycle: cycle, At: now, PktKind: pktKind, PktLen: pkt.Len(), Empty: pkt.Empty}
		for i := 0; i < nEvents; i++ {
			info.Events = append(info.Events, kinds[i])
		}
		s.OnSlot(info)
	}

	ctx := &s.ctx
	pktEv := events.Event{Kind: pktKind, When: now, Port: pkt.InPort, PktLen: pkt.Len()}
	ctx.Reset(pkt, pktEv, now, cycle)

	if havePkt && s.prog != nil {
		// Parse headers once per slot.
		_ = ctx.Parsed.Decode(pkt.Data, &ctx.Decoded)
		ctx.Flow, ctx.FlowOK = packet.FlowOf(pkt.Data)
		if ctx.FlowOK {
			// Packet events carry the flow hash, like the paper's
			// ingress logic initializing enq_meta.flowID.
			pktEv.FlowHash = ctx.Flow.Hash()
			ctx.Ev = pktEv
		}
		if s.prog.Handles(pktKind) {
			s.stats.EventsMerged[pktKind]++
			if s.tel != nil {
				s.tel.Merged[pktKind].Inc()
			}
			s.prog.Apply(ctx)
		}
	}
	if s.prog != nil {
		for i := 0; i < nEvents; i++ {
			ctx.Ev = slotEvents[i]
			s.stats.EventsMerged[kinds[i]]++
			if s.tel != nil {
				s.tel.Merged[kinds[i]].Inc()
				s.tel.ObserveMerge(now, cycle, slotEvents[i], havePkt)
			}
			s.prog.Apply(ctx)
		}
		ctx.Ev = pktEv
	}

	s.finishSlot(ctx, havePkt)

	if s.prog != nil {
		s.prog.EndCycle()
	}
	return false
}

// fastForwardDrain batches a drain-only stretch: having just executed a
// pure drain cycle at now, it computes how many further consecutive cycles
// could only ever be drain cycles — no scheduler event (which might
// deliver a packet or raise an event) fires strictly before each of them,
// and the active Run/RunBefore horizon is respected — and replays them in
// one DrainN call per register instead of re-arming the cycle lane once
// per cycle. DrainN reproduces the exact per-cycle round-robin drain
// order, per-delta lag values and drain-hook callbacks, and the counters
// below advance exactly as if each cycle had run, so every observable
// (stats, telemetry, staleness histograms, partitioned windows) is
// byte-identical to the slow path.
//
// The bound is conservative in exactly the right way: a cycle at
// now + k*cycleTime may be replayed only while k*cycleTime stays strictly
// below the next pending event (an event firing at or before a cycle's
// instant could schedule packet work for it, and at equal instants the
// event fires first — it was scheduled before the lane re-armed), and
// while the cycle stays inside the scheduler's current run horizon
// (inclusive for Run, strict for RunBefore) so windowed partitioned
// execution pauses at the same cycle it would have.
func (s *Switch) fastForwardDrain(now sim.Time) {
	if !s.haveDrainWork() {
		return
	}
	ct := int64(s.cycleTime)
	maxK := int64(1) << 62
	if na, ok := s.sched.NextAt(); ok {
		if na <= now {
			return
		}
		if k := (int64(na-now) - 1) / ct; k < maxK {
			maxK = k
		}
	}
	// The conveyor is its own horizon source: mid-burst the aux lane is
	// hidden from NextAt, so consult the entries directly. Outside a burst
	// the lane is armed at exactly this minimum and the bound repeats the
	// NextAt clamp verbatim.
	if at, _, _, ok := s.auxMin(); ok {
		if at <= now {
			return
		}
		if k := (int64(at-now) - 1) / ct; k < maxK {
			maxK = k
		}
	}
	if limit, strict := s.sched.RunBound(); limit != sim.Forever {
		d := int64(limit - now)
		if strict {
			d--
		}
		if d < 0 {
			d = 0
		}
		if k := d / ct; k < maxK {
			maxK = k
		}
	}
	if maxK <= 0 {
		return
	}
	// Each register fast-forwards independently from the shared current
	// cycle; the stretch consumed is the longest any register needed
	// (shorter ones simply have no backlog left — their remaining cycles
	// are no-ops in the slow path too, and the next prog.Tick re-aligns
	// them).
	var used uint64
	for _, r := range s.prog.Registers() {
		if u := r.DrainN(uint64(maxK)); u > used {
			used = u
		}
	}
	if used == 0 {
		return
	}
	s.cycleIdx += used
	s.stats.Cycles += used
	s.stats.DrainSlots += used
	if s.tel != nil {
		s.tel.Cycles.Add(used)
		s.tel.DrainSlots.Add(used)
	}
	s.nextCycleAt = now + sim.Time(used+1)*s.cycleTime
}

// finishSlot applies the slot's side effects: user events, generated
// packets, recirculation, and the forwarding decision.
func (s *Switch) finishSlot(ctx *pisa.Context, havePkt bool) {
	for _, e := range ctx.Raised {
		s.pushEvent(e)
	}
	if len(ctx.Generated) > 0 {
		// Materialize the slot's generated packets, then hand the ones
		// with explicit ports to the TM in one bulk call. EnqueueN runs
		// the per-packet reaction (pump / drop) between items exactly
		// where a per-packet Enqueue loop would, so event sequence
		// numbers and transmit timings are unchanged.
		s.tmReqs = s.tmReqs[:0]
		s.tmPkts = s.tmPkts[:0]
		for _, g := range ctx.Generated {
			s.stats.Generated++
			pkt := s.pool.GetCopy(g.Data, -1)
			pkt.Gen = true
			if g.Port >= 0 && g.Port < s.cfg.Ports {
				s.tmReqs = append(s.tmReqs, tm.EnqueueReq{
					Pkt: pkt, Port: g.Port, FlowHash: flowHashOf(g.Data),
				})
				s.tmPkts = append(s.tmPkts, pkt)
			} else {
				s.genq = append(s.genq, pkt)
			}
		}
		if len(s.tmReqs) > 0 {
			s.tmgr.EnqueueN(s.tmReqs, s.sched.Now(), s.tmResult)
		}
	}
	if !havePkt {
		return
	}
	pkt := ctx.Pkt
	if ctx.Recirculate {
		cl := pkt
		cl.Recirc++
		s.stats.Recirculated++
		s.recirc = append(s.recirc, cl)
		return
	}
	if ctx.EgressPort == pisa.PortDrop {
		s.stats.PipelineDrops++
		if s.OnDrop != nil {
			s.OnDrop(pkt, "pipeline-drop")
		}
		pkt.Release()
		return
	}
	if ctx.EgressPort < 0 || ctx.EgressPort >= s.cfg.Ports {
		s.stats.PipelineDrops++
		if s.OnDrop != nil {
			s.OnDrop(pkt, "bad-egress-port")
		}
		pkt.Release()
		return
	}
	var fh uint64
	if ctx.FlowOK {
		fh = ctx.Flow.Hash()
	}
	s.enqueueOutDelayed(pkt, ctx.EgressPort, ctx.Queue, ctx.Rank, fh)
}

// pipeEntry is one packet riding the pipeline conveyor: the
// pipeline-latency delay between its slot and the traffic manager. The
// entry's (at, seq) are the exact coordinates the equivalent scheduler
// event would have carried — at is slot time + PipelineLatency cycles,
// seq was drawn from the shared counter when the slot finished — so the
// conveyor is FIFO in (at, seq) by construction.
type pipeEntry struct {
	pkt            *packet.Packet
	port, q        int
	rank, flowHash uint64
	at             sim.Time
	seq            uint64
}

// enqueueOutDelayed models the pipeline's depth: the packet reaches the
// traffic manager PipelineLatency cycles after its slot. The handoff is
// a conveyor append — no heap event, no allocation.
func (s *Switch) enqueueOutDelayed(pkt *packet.Packet, port, q int, rank, flowHash uint64) {
	at := s.sched.Now() + sim.Time(s.cfg.PipelineLatency)*s.cycleTime
	seq := s.sched.NextSeq()
	s.pipeQ = append(s.pipeQ, pipeEntry{
		pkt: pkt, port: port, q: q, rank: rank, flowHash: flowHash, at: at, seq: seq,
	})
	if s.inBurst {
		return
	}
	if at0, seq0, armed := s.auxLane.ArmedAt(); !armed || at < at0 || (at == at0 && seq < seq0) {
		s.auxLane.ArmExact(at, seq)
	}
}

// auxMin returns the coordinates of the earliest conveyor entry — the
// pipe head or a pending tx completion — and which one it is (txPort is
// -1 for the pipe head).
func (s *Switch) auxMin() (at sim.Time, seq uint64, txPort int, ok bool) {
	txPort = -1
	if s.pipeHead < len(s.pipeQ) {
		e := &s.pipeQ[s.pipeHead]
		at, seq, ok = e.at, e.seq, true
	}
	for p, pend := range s.txDonePend {
		if pend && (!ok || s.txDoneAt[p] < at || (s.txDoneAt[p] == at && s.txDoneSeq[p] < seq)) {
			at, seq, txPort, ok = s.txDoneAt[p], s.txDoneSeq[p], p, true
		}
	}
	return at, seq, txPort, ok
}

// auxArm points the aux lane at the earliest conveyor entry, or disarms
// it when the conveyor is empty. The invariant — the aux lane is always
// armed at the conveyor minimum's exact coordinates — is what keeps
// NextAt, NextBefore, and the drain fast-forward's horizon aware of
// conveyor work exactly as they were when each entry was a heap event.
func (s *Switch) auxArm() {
	if at, seq, _, ok := s.auxMin(); ok {
		s.auxLane.ArmExact(at, seq)
	} else {
		s.auxLane.Disarm()
	}
}

// auxFire runs the conveyor entry auxMin identified (the clock is
// already at its instant) and re-arms the lane at the new minimum.
func (s *Switch) auxFire(txPort int) {
	if txPort >= 0 {
		s.txDonePend[txPort] = false
		s.txPendCount--
		if !s.inBurst {
			s.auxArm()
		}
		s.txComplete(txPort)
		return
	}
	e := &s.pipeQ[s.pipeHead]
	pkt, port, q, rank, fh := e.pkt, e.port, e.q, e.rank, e.flowHash
	e.pkt = nil
	s.pipeHead++
	if s.pipeHead == len(s.pipeQ) {
		s.pipeQ = s.pipeQ[:0]
		s.pipeHead = 0
	} else if s.pipeHead >= 64 && s.pipeHead*2 >= len(s.pipeQ) {
		n := copy(s.pipeQ, s.pipeQ[s.pipeHead:])
		s.pipeQ = s.pipeQ[:n]
		s.pipeHead = 0
	}
	if !s.inBurst {
		s.auxArm()
	}
	s.enqueueOut(pkt, port, q, rank, fh)
}

// auxRun fires on the aux lane: deliver the entry the lane was armed
// for, then — burst mode — keep delivering consecutive entries inline
// while the scheduler holds nothing that precedes them and the run
// horizon allows it (the same proof the burst slot loop uses). In
// per-packet oracle mode each dispatch delivers exactly one entry, like
// the heap events the conveyor replaced.
func (s *Switch) auxRun() {
	_, _, txPort, ok := s.auxMin()
	if !ok {
		return
	}
	if s.noBurst || s.conveyorDepth() < BurstEngageDepth {
		// Per-packet oracle mode, or a conveyor too shallow for the
		// continuation loop to beat plain dispatch: deliver exactly one
		// entry, like the heap event it replaced.
		s.auxFire(txPort)
		return
	}
	s.inBurst = true
	s.auxFire(txPort)
	limit, strict := s.sched.RunBound()
	for {
		at, seq, txPort, ok := s.auxMin()
		if !ok || at > limit || (strict && at == limit) || s.sched.NextBefore(at, seq) {
			break
		}
		s.sched.AdvanceTo(at)
		s.auxFire(txPort)
	}
	s.inBurst = false
	s.auxArm()
}

func (s *Switch) enqueueOut(pkt *packet.Packet, port, q int, rank, flowHash uint64) {
	ok := s.tmgr.Enqueue(pkt, port, q, rank, flowHash, s.sched.Now())
	if !ok {
		if s.OnDrop != nil {
			s.OnDrop(pkt, "tm-overflow")
		}
		pkt.Release()
		return
	}
	s.pump(port)
}

// pump starts transmitting on a port if it is idle and has queued work.
func (s *Switch) pump(port int) {
	if s.txBusy[port] {
		return
	}
	pkt, ok := s.tmgr.Dequeue(port, s.sched.Now())
	if !ok {
		return
	}
	// PSA-style egress processing at dequeue time, when bound. The
	// context comes from a free list rather than being shared: the
	// handler's side effects (Emit -> enqueueOut -> pump) can re-enter
	// this function for another port, which then draws its own context.
	if s.prog != nil && s.prog.Handles(events.EgressPacket) && !pkt.Empty {
		var ctx *pisa.Context
		if n := len(s.egrFree); n > 0 {
			ctx = s.egrFree[n-1]
			s.egrFree = s.egrFree[:n-1]
		} else {
			ctx = &pisa.Context{}
		}
		ctx.Reset(pkt, events.Event{
			Kind: events.EgressPacket, When: s.sched.Now(), Port: port, PktLen: pkt.Len(),
		}, s.sched.Now(), s.cycleIdx)
		_ = ctx.Parsed.Decode(pkt.Data, &ctx.Decoded)
		ctx.Flow, ctx.FlowOK = packet.FlowOf(pkt.Data)
		ctx.EgressPort = port
		s.prog.Apply(ctx)
		for _, e := range ctx.Raised {
			s.pushEvent(e)
		}
		for _, g := range ctx.Generated {
			s.stats.Generated++
			gp := s.pool.GetCopy(g.Data, -1)
			gp.Gen = true
			if g.Port >= 0 {
				s.enqueueOut(gp, g.Port, 0, 0, flowHashOf(g.Data))
			} else {
				s.genq = append(s.genq, gp)
				s.wake()
			}
		}
		dropped := ctx.EgressPort == pisa.PortDrop
		s.egrFree = append(s.egrFree, ctx)
		if dropped {
			s.stats.PipelineDrops++
			if s.OnDrop != nil {
				s.OnDrop(pkt, "egress-drop")
			}
			pkt.Release()
			s.pump(port)
			return
		}
	}
	if !s.linkUp[port] {
		s.stats.TxDroppedLinkDown++
		if s.OnDrop != nil {
			s.OnDrop(pkt, "link-down")
		}
		pkt.Release()
		s.pump(port)
		return
	}
	s.txBusy[port] = true
	s.txPkt[port] = pkt
	ser := s.cfg.LineRate.ByteTime(pkt.Len() + WireOverhead)
	at := s.sched.Now() + ser
	seq := s.sched.NextSeq()
	s.txDoneAt[port] = at
	s.txDoneSeq[port] = seq
	s.txDonePend[port] = true
	s.txPendCount++
	if s.inBurst {
		return
	}
	if at0, seq0, armed := s.auxLane.ArmedAt(); !armed || at < at0 || (at == at0 && seq < seq0) {
		s.auxLane.ArmExact(at, seq)
	}
}

// txComplete finishes a port's in-flight transmission: the packet's last
// byte has left the wire. One packet is in flight per port at a time, so
// the pre-built per-port callback needs no per-packet closure.
func (s *Switch) txComplete(port int) {
	pkt := s.txPkt[port]
	s.txPkt[port] = nil
	s.txBusy[port] = false
	s.stats.TxPackets++
	s.stats.TxBytes += uint64(pkt.Len())
	s.pushEvent(events.Event{
		Kind: events.PacketTransmitted, When: s.sched.Now(),
		Port: port, PktLen: pkt.Len(),
	})
	if s.OnTransmit != nil {
		// netsim's transmit hook copies the frame into its own pooled
		// buffers before returning, so the packet can be recycled here.
		s.OnTransmit(port, pkt)
	}
	pkt.Release()
	s.pump(port)
}

// flowHashOf computes the flow hash of a frame, or 0 for non-IP frames.
func flowHashOf(data []byte) uint64 {
	if f, ok := packet.FlowOf(data); ok {
		return f.Hash()
	}
	return 0
}

// EventQueueLen reports the occupancy of the merger FIFO for a kind
// (monitoring).
func (s *Switch) EventQueueLen(k events.Kind) int { return s.evq[k].Len() }

// EventQueueDrops reports FIFO-full losses for a kind.
func (s *Switch) EventQueueDrops(k events.Kind) uint64 { return s.evq[k].Drops() }

// EventQueueHighWater reports the peak occupancy of a kind's FIFO.
func (s *Switch) EventQueueHighWater(k events.Kind) int { return s.evq[k].HighWater() }

// EventQueue exposes one merger FIFO read-only for audits.
func (s *Switch) EventQueue(k events.Kind) *events.Queue { return s.evq[k] }

// Inventory reports where packets currently sit inside the switch. With
// the switch's lifetime counters it closes the packet-conservation
// identity faults.Audit checks:
//
//	RxPackets + Generated == TxPackets + PipelineDrops +
//	    TxDroppedLinkDown + TM overflow drops + Inventory sum
type Inventory struct {
	RxQueued   int // received, not yet through a pipeline slot
	Recirc     int // waiting on the recirculation path
	GenQueued  int // generated, waiting for a slot
	InPipeline int // between their slot and the traffic manager
	Buffered   int // in traffic-manager output queues
	OnWire     int // being serialized onto a port right now
}

// Total sums the inventory.
func (inv Inventory) Total() int {
	return inv.RxQueued + inv.Recirc + inv.GenQueued + inv.InPipeline + inv.Buffered + inv.OnWire
}

// Inventory snapshots the switch's in-flight packet population.
func (s *Switch) Inventory() Inventory {
	var inv Inventory
	for p := range s.rxq {
		inv.RxQueued += len(s.rxq[p]) - s.rxHead[p]
	}
	inv.Recirc = len(s.recirc)
	inv.GenQueued = len(s.genq)
	inv.InPipeline = len(s.pipeQ) - s.pipeHead
	enq, deq, _, _ := s.tmgr.Stats()
	inv.Buffered = int(enq - deq)
	for _, pkt := range s.txPkt {
		if pkt != nil {
			inv.OnWire++
		}
	}
	return inv
}
