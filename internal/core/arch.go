// Package core implements the paper's contribution: an event-driven PISA
// switch architecture. A Switch is a cycle-level model of the SUME Event
// Switch datapath (paper Figure 4): input ports feed an Event Merger that
// pairs each pipeline slot with pending data-plane events (injecting an
// empty packet when the wire is idle), a single P4 pipeline executes the
// program's event handlers, and a traffic manager with output queues
// raises enqueue/dequeue/overflow/underflow events that feed back into
// the merger. Timer, packet-generator, link-status and control-plane
// blocks produce the non-packet events of Table 1.
//
// The same Switch, configured with the Baseline architecture, models a
// baseline PISA/PSA device: only packet events are exposed to the
// program, and every other event source is absent — exactly the contrast
// the paper draws in Figures 1 and 2.
package core

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/pisa"
)

// Arch is the P4 architecture description: the set of data-plane events a
// target exposes to programs (paper §2: "A particular target device
// exposes the precise set of events that it supports via the P4
// architecture description file.").
type Arch struct {
	// Name identifies the architecture in diagnostics.
	Name string

	// Supported flags each event kind the target exposes.
	Supported [events.NumKinds]bool

	// Timers is the number of hardware timers (0 disables the block).
	Timers int

	// Generator enables the configurable packet generator block.
	Generator bool
}

// Supports reports whether the architecture exposes event kind k.
func (a *Arch) Supports(k events.Kind) bool { return a.Supported[k] }

// SupportedKinds lists the exposed kinds in kind order.
func (a *Arch) SupportedKinds() []events.Kind {
	var ks []events.Kind
	for k := 0; k < events.NumKinds; k++ {
		if a.Supported[k] {
			ks = append(ks, events.Kind(k))
		}
	}
	return ks
}

// Validate checks that a program only handles events the architecture
// exposes. Loading a program that binds an unsupported event fails, the
// way a P4 compile against the wrong architecture file would.
func (a *Arch) Validate(p *pisa.Program) error {
	for _, k := range p.HandledKinds() {
		if !a.Supported[k] {
			return fmt.Errorf("core: architecture %q does not expose event %v bound by program %q",
				a.Name, k, p.Name())
		}
	}
	return nil
}

// Baseline returns the baseline PISA/PSA architecture: packet events
// only (paper Figure 1). There are no timers, no packet generator, and
// the traffic manager's events are invisible to the program.
func Baseline() *Arch {
	a := &Arch{Name: "baseline-pisa"}
	a.Supported[events.IngressPacket] = true
	a.Supported[events.EgressPacket] = true
	a.Supported[events.RecirculatedPacket] = true
	return a
}

// EventDriven returns the full event-driven architecture of the SUME
// Event Switch (paper Figure 4): every event of Table 1, eight hardware
// timers, and the packet generator.
func EventDriven() *Arch {
	a := &Arch{Name: "sume-event-switch", Timers: 8, Generator: true}
	for k := 0; k < events.NumKinds; k++ {
		a.Supported[k] = true
	}
	return a
}

// Logical returns the minimal event-driven architecture of the paper's
// §2 example (Figure 2): ingress packet, enqueue and dequeue events only.
func Logical() *Arch {
	a := &Arch{Name: "logical-enq-deq"}
	a.Supported[events.IngressPacket] = true
	a.Supported[events.BufferEnqueue] = true
	a.Supported[events.BufferDequeue] = true
	return a
}
