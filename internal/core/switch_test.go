package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// xconnect returns a program that forwards port 0<->1, 2<->3.
func xconnect() *pisa.Program {
	p := pisa.NewProgram("xconnect")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	return p
}

func frame(n int, src, dst byte) []byte {
	return packet.BuildFrame(packet.FrameSpec{
		Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, src), Dst: packet.IP4(10, 0, 0, dst),
			SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoUDP,
		},
		TotalLen: n,
	})
}

func TestSwitchForwards(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{Name: "s1"}, Baseline(), sched)
	sw.MustLoad(xconnect())

	var out []int
	sw.OnTransmit = func(port int, pkt *packet.Packet) { out = append(out, port) }

	sw.Inject(0, frame(100, 1, 2))
	sw.Inject(1, frame(100, 2, 1))
	sched.Run(sim.Millisecond)

	if len(out) != 2 {
		t.Fatalf("transmitted %d packets, want 2", len(out))
	}
	if out[0] != 1 && out[1] != 1 {
		t.Errorf("no packet left port 1: %v", out)
	}
	st := sw.Stats()
	if st.RxPackets != 2 || st.TxPackets != 2 {
		t.Errorf("rx=%d tx=%d", st.RxPackets, st.TxPackets)
	}
	if st.PacketSlots != 2 || st.EmptySlots != 0 {
		t.Errorf("slots: pkt=%d empty=%d", st.PacketSlots, st.EmptySlots)
	}
}

func TestArchValidation(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, Baseline(), sched)
	p := pisa.NewProgram("ev")
	p.HandleFunc(events.BufferEnqueue, func(*pisa.Context) {})
	if err := sw.Load(p); err == nil {
		t.Fatal("baseline arch accepted an enqueue handler")
	}
	sw2 := New(Config{}, EventDriven(), sched)
	if err := sw2.Load(p); err != nil {
		t.Fatalf("event arch rejected program: %v", err)
	}
}

func TestBaselineHasNoTimersOrGenerator(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, Baseline(), sched)
	if err := sw.ConfigureTimer(0, sim.Millisecond); err == nil {
		t.Error("baseline arch configured a timer")
	}
	if err := sw.AddGenerator(sim.Millisecond, func(uint64) ([]byte, int) { return nil, 0 }); err == nil {
		t.Error("baseline arch configured a generator")
	}
}

func TestEnqueueDequeueEventsReachProgram(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := xconnect()
	var enq, deq int
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		enq++
		if ctx.Ev.PktLen == 0 || ctx.Ev.FlowHash == 0 {
			t.Errorf("enqueue event missing metadata: %+v", ctx.Ev)
		}
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) { deq++ })
	sw.MustLoad(p)

	for i := 0; i < 5; i++ {
		sw.Inject(0, frame(200, 1, 2))
	}
	sched.Run(sim.Millisecond)
	if enq != 5 || deq != 5 {
		t.Errorf("enq=%d deq=%d, want 5/5", enq, deq)
	}
	st := sw.Stats()
	if st.EventsMerged[events.BufferEnqueue] != 5 {
		t.Errorf("merged enq = %d", st.EventsMerged[events.BufferEnqueue])
	}
	// Events arriving when no packets were left must have used empty slots.
	if st.EmptySlots == 0 {
		t.Error("expected some empty metadata slots")
	}
}

func TestSharedRegisterTracksQueueOccupancy(t *testing.T) {
	// The paper's §2 example: enqueue adds pkt_len, dequeue subtracts it.
	// After the run the per-flow occupancy register must read zero and
	// its True value must match at all times.
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := xconnect()
	reg := p.AddRegister(pisa.NewAggregatedRegister("bufSize", 64,
		events.BufferEnqueue, events.BufferDequeue))
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		reg.Add(ctx, uint32(ctx.Ev.FlowHash%64), int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		reg.Add(ctx, uint32(ctx.Ev.FlowHash%64), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(p)

	for i := 0; i < 50; i++ {
		sw.Inject(0, frame(500, 1, 2))
	}
	sched.Run(10 * sim.Millisecond)
	for i := uint32(0); i < 64; i++ {
		if v := reg.True(i); v != 0 {
			t.Errorf("flow slot %d: true occupancy %d after drain, want 0", i, v)
		}
		if v := reg.Stale(i); v != 0 {
			t.Errorf("flow slot %d: stale occupancy %d after drain, want 0", i, v)
		}
	}
	m, conflicts := reg.Metrics()
	if m.Deferred != 100 { // 50 enq + 50 deq
		t.Errorf("deferred = %d, want 100", m.Deferred)
	}
	if m.Dropped != 0 || conflicts != 0 {
		t.Errorf("dropped=%d conflicts=%d", m.Dropped, conflicts)
	}
}

func TestTimerEvents(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("timers")
	var fired []int
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		fired = append(fired, ctx.Ev.TimerID)
	})
	sw.MustLoad(p)
	if err := sw.ConfigureTimer(2, 100*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	sched.Run(1050 * sim.Microsecond)
	if len(fired) != 10 {
		t.Fatalf("timer fired %d times, want 10", len(fired))
	}
	for _, id := range fired {
		if id != 2 {
			t.Errorf("timer id = %d, want 2", id)
		}
	}
	sw.StopTimer(2)
	n := len(fired)
	sched.Run(2 * sim.Millisecond)
	if len(fired) != n {
		t.Error("timer fired after StopTimer")
	}
	if err := sw.ConfigureTimer(99, sim.Millisecond); err == nil {
		t.Error("out-of-range timer id accepted")
	}
}

func TestGeneratorRoutesThroughPipeline(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("gen")
	var genSlots int
	p.HandleFunc(events.GeneratedPacket, func(ctx *pisa.Context) {
		genSlots++
		ctx.EgressPort = 3
	})
	sw.MustLoad(p)
	probe := packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(1),
		&packet.Probe{TorID: 1})
	if err := sw.AddGenerator(50*sim.Microsecond, func(seq uint64) ([]byte, int) {
		return probe, -1 // route in pipeline
	}); err != nil {
		t.Fatal(err)
	}
	var tx []int
	sw.OnTransmit = func(port int, pkt *packet.Packet) { tx = append(tx, port) }
	sched.Run(525 * sim.Microsecond)
	if genSlots != 10 {
		t.Errorf("generated slots = %d, want 10", genSlots)
	}
	if len(tx) != 10 {
		t.Fatalf("transmitted = %d, want 10", len(tx))
	}
	for _, port := range tx {
		if port != 3 {
			t.Errorf("probe left port %d, want 3", port)
		}
	}
}

func TestLinkStatusEvents(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("links")
	var changes []events.Event
	p.HandleFunc(events.LinkStatusChange, func(ctx *pisa.Context) {
		changes = append(changes, ctx.Ev)
	})
	sw.MustLoad(p)
	sched.At(10*sim.Microsecond, func() { sw.SetLink(2, false) })
	sched.At(20*sim.Microsecond, func() { sw.SetLink(2, true) })
	sched.At(25*sim.Microsecond, func() { sw.SetLink(2, true) }) // no change: no event
	sched.Run(sim.Millisecond)
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	if changes[0].Up || changes[0].Port != 2 {
		t.Errorf("first change = %+v", changes[0])
	}
	if !changes[1].Up {
		t.Errorf("second change = %+v", changes[1])
	}
}

func TestLinkDownDropsTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, Baseline(), sched)
	sw.MustLoad(xconnect())
	sw.SetLink(0, false)
	sw.Inject(0, frame(100, 1, 2)) // rx on downed link: lost
	sched.Run(sim.Millisecond)
	st := sw.Stats()
	if st.RxDropped != 1 || st.TxPackets != 0 {
		t.Errorf("rxDropped=%d tx=%d", st.RxDropped, st.TxPackets)
	}
}

func TestControlPlaneTriggeredEvent(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("cp")
	var data []uint64
	p.HandleFunc(events.ControlPlaneTriggered, func(ctx *pisa.Context) {
		data = append(data, ctx.Ev.Data)
	})
	sw.MustLoad(p)
	sw.TriggerControlEvent(42)
	sched.Run(sim.Millisecond)
	if len(data) != 1 || data[0] != 42 {
		t.Errorf("data = %v", data)
	}
}

func TestUserEventsAndRecirculation(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("user")
	var userData []uint64
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if ctx.Pkt.Recirc == 0 {
			ctx.Recirculate = true
			ctx.RaiseUser(7)
			return
		}
		ctx.EgressPort = 1 // second pass forwards
	})
	p.HandleFunc(events.RecirculatedPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = 1
	})
	p.HandleFunc(events.UserEvent, func(ctx *pisa.Context) {
		userData = append(userData, ctx.Ev.Data)
	})
	sw.MustLoad(p)
	var tx int
	sw.OnTransmit = func(int, *packet.Packet) { tx++ }
	sw.Inject(0, frame(100, 1, 2))
	sched.Run(sim.Millisecond)
	if tx != 1 {
		t.Fatalf("tx = %d, want 1 (after recirculation)", tx)
	}
	st := sw.Stats()
	if st.Recirculated != 1 {
		t.Errorf("recirculated = %d", st.Recirculated)
	}
	if len(userData) != 1 || userData[0] != 7 {
		t.Errorf("user events = %v", userData)
	}
}

func TestPacketTransmittedEvent(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := xconnect()
	var tx []events.Event
	p.HandleFunc(events.PacketTransmitted, func(ctx *pisa.Context) {
		tx = append(tx, ctx.Ev)
	})
	sw.MustLoad(p)
	sw.Inject(0, frame(300, 1, 2))
	sched.Run(sim.Millisecond)
	if len(tx) != 1 {
		t.Fatalf("transmitted events = %d", len(tx))
	}
	if tx[0].Port != 1 || tx[0].PktLen != 300 {
		t.Errorf("event = %+v", tx[0])
	}
}

func TestOverflowEvent(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{QueueCapBytes: 1000}, EventDriven(), sched)
	p := pisa.NewProgram("ovf")
	// Forward everything to port 1 but keep the link down so the queue
	// fills.
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	var overflows int
	p.HandleFunc(events.BufferOverflow, func(ctx *pisa.Context) { overflows++ })
	sw.MustLoad(p)
	// Stop the port from draining by pointing transmissions at a downed
	// link; dequeue drops them but we want queue buildup, so instead
	// block the TX by filling with more bytes than the queue capacity
	// in one burst (arrivals are faster than the 10G drain).
	for i := 0; i < 30; i++ {
		sw.Inject(0, frame(500, 1, 2))
	}
	sched.Run(10 * sim.Millisecond)
	if overflows == 0 {
		t.Error("no overflow events despite 15 KB burst into 1 KB queue")
	}
	st := sw.Stats()
	if st.EventsMerged[events.BufferOverflow] != uint64(overflows) {
		t.Errorf("merged=%d handler=%d", st.EventsMerged[events.BufferOverflow], overflows)
	}
}

func TestUnderflowEvent(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := xconnect()
	var underflows int
	p.HandleFunc(events.BufferUnderflow, func(ctx *pisa.Context) { underflows++ })
	sw.MustLoad(p)
	sw.Inject(0, frame(100, 1, 2))
	sched.Run(sim.Millisecond)
	if underflows != 1 {
		t.Errorf("underflows = %d, want 1", underflows)
	}
}

func TestCycleTimeMath(t *testing.T) {
	sched := sim.NewScheduler()
	// 4 ports x 10G, overspeed 1.0: min wire pkt (84B) takes 67.2ns per
	// port, so the aggregate slot budget is 16.8ns.
	sw := New(Config{Ports: 4, LineRate: 10 * sim.Gbps, Overspeed: 1.0}, Baseline(), sched)
	if got := sw.CycleTime(); got != 16800*sim.Picosecond {
		t.Errorf("cycle time = %v, want 16.8ns", got)
	}
	sw2 := New(Config{Ports: 4, LineRate: 10 * sim.Gbps, Overspeed: 1.4}, Baseline(), sched)
	if got := sw2.CycleTime(); got != 12000*sim.Picosecond {
		t.Errorf("cycle time = %v, want 12ns", got)
	}
}

func TestEventFIFODropsWhenFull(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{EventQueueDepth: 4}, EventDriven(), sched)
	p := pisa.NewProgram("cp")
	p.HandleFunc(events.ControlPlaneTriggered, func(*pisa.Context) {})
	sw.MustLoad(p)
	// Push 10 control events at the same instant; FIFO holds 4.
	for i := 0; i < 10; i++ {
		sw.TriggerControlEvent(uint64(i))
	}
	if sw.EventQueueDrops(events.ControlPlaneTriggered) != 6 {
		t.Errorf("drops = %d, want 6", sw.EventQueueDrops(events.ControlPlaneTriggered))
	}
	sched.Run(sim.Millisecond)
	st := sw.Stats()
	if st.EventsMerged[events.ControlPlaneTriggered] != 4 {
		t.Errorf("merged = %d, want 4", st.EventsMerged[events.ControlPlaneTriggered])
	}
}

func TestUnsubscribedEventsNotQueued(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	sw.MustLoad(xconnect()) // handles only IngressPacket
	sw.Inject(0, frame(100, 1, 2))
	sched.Run(sim.Millisecond)
	if sw.EventQueueLen(events.BufferEnqueue) != 0 {
		t.Error("enqueue events queued despite no handler")
	}
	st := sw.Stats()
	if st.EventsMerged[events.BufferEnqueue] != 0 {
		t.Error("enqueue events merged despite no handler")
	}
	if st.TxPackets != 1 {
		t.Errorf("tx = %d", st.TxPackets)
	}
}
