package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// TestLinkFlapBurstCoalesces pins the default LinkStatusChange overflow
// policy: a burst of flaps on one port that outruns the pipeline
// collapses to a single pending event carrying the port's final state.
func TestLinkFlapBurstCoalesces(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	var seen []events.Event
	p := pisa.NewProgram("linkwatch")
	p.HandleFunc(events.LinkStatusChange, func(ctx *pisa.Context) {
		seen = append(seen, ctx.Ev)
	})
	sw.MustLoad(p)

	// 7 transitions on port 1 before the scheduler runs a single cycle:
	// down,up,down,up,down,up,down. One is stored, six coalesce.
	for i := 0; i < 7; i++ {
		sw.SetLink(1, i%2 != 0)
	}
	// One transition on port 2 queues separately.
	sw.SetLink(2, false)
	sched.Run(sim.Millisecond)

	if len(seen) != 2 {
		t.Fatalf("handler saw %d events, want 2 (coalesced burst + port 2)", len(seen))
	}
	if seen[0].Port != 1 || seen[0].Up {
		t.Errorf("port 1 event = %+v, want final state down", seen[0])
	}
	if seen[1].Port != 2 || seen[1].Up {
		t.Errorf("port 2 event = %+v", seen[1])
	}
	st := sw.Stats()
	if st.EventsCoalesced[events.LinkStatusChange] != 6 {
		t.Errorf("coalesced = %d, want 6", st.EventsCoalesced[events.LinkStatusChange])
	}
	if st.EventsDropped[events.LinkStatusChange] != 0 {
		t.Errorf("dropped = %d, want 0 (coalescing saved them)", st.EventsDropped[events.LinkStatusChange])
	}
	if hw := sw.EventQueueHighWater(events.LinkStatusChange); hw != 2 {
		t.Errorf("high water = %d, want 2", hw)
	}
}

// TestEventOverflowPolicyOverride pins Config.EventOverflow: a UserEvent
// FIFO configured DropOldest sheds its head under pressure instead of
// refusing fresh events.
func TestEventOverflowPolicyOverride(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{
		EventQueueDepth: 4,
		EventOverflow:   map[events.Kind]events.OverflowPolicy{events.UserEvent: events.DropOldest},
	}, EventDriven(), sched)
	var got []uint64
	p := pisa.NewProgram("userwatch")
	p.HandleFunc(events.UserEvent, func(ctx *pisa.Context) { got = append(got, ctx.Ev.Data) })
	sw.MustLoad(p)

	for i := 0; i < 10; i++ {
		if ok := sw.InjectEvent(events.Event{Kind: events.UserEvent, Port: -1, Data: uint64(i)}); !ok {
			t.Fatalf("inject %d refused under DropOldest", i)
		}
	}
	sched.Run(sim.Millisecond)

	if len(got) != 4 {
		t.Fatalf("handler saw %d events, want the 4 freshest", len(got))
	}
	for i, d := range got {
		if want := uint64(6 + i); d != want {
			t.Errorf("got[%d] = %d, want %d", i, d, want)
		}
	}
	st := sw.Stats()
	if st.EventsShed[events.UserEvent] != 6 || st.EventsDropped[events.UserEvent] != 0 {
		t.Errorf("shed=%d dropped=%d, want 6/0", st.EventsShed[events.UserEvent], st.EventsDropped[events.UserEvent])
	}
}

// TestInjectEventGating pins InjectEvent's contract: events the
// architecture or program doesn't accept are refused, not queued.
func TestInjectEventGating(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, Baseline(), sched)
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	sw.MustLoad(p)
	if sw.InjectEvent(events.Event{Kind: events.LinkStatusChange, Port: 1}) {
		t.Error("baseline arch accepted a LinkStatusChange injection")
	}
}

// TestSwitchPacketConservation pins the inventory identity faults.Audit
// checks: every accepted or generated packet is transmitted, dropped
// with a counted reason, or still somewhere in the Inventory.
func TestSwitchPacketConservation(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{QueueCapBytes: 4096}, EventDriven(), sched)
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	sw.MustLoad(p)

	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	frame := packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1500})

	// Overdrive the 4 KiB queue while the output link flaps, so every
	// loss class (tm-overflow, link-down) and live inventory state shows
	// up; stop the run mid-flight so Inventory is non-trivial.
	for i := 0; i < 40; i++ {
		at := sim.Time(i) * 200 * sim.Nanosecond
		sched.At(at, func() { sw.Inject(0, frame) })
	}
	sched.At(3*sim.Microsecond, func() { sw.SetLink(1, false) })
	sched.At(5*sim.Microsecond, func() { sw.SetLink(1, true) })
	sched.Run(6 * sim.Microsecond)

	st := sw.Stats()
	_, _, tmDrops, _ := sw.TM().Stats()
	accepted := st.RxPackets + st.Generated
	accounted := st.TxPackets + st.PipelineDrops + st.TxDroppedLinkDown +
		tmDrops + uint64(sw.Inventory().Total())
	if accepted != accounted {
		t.Errorf("conservation broken mid-run: accepted=%d accounted=%d inv=%+v",
			accepted, accounted, sw.Inventory())
	}
	// And again after draining.
	sched.Run(10 * sim.Millisecond)
	st = sw.Stats()
	_, _, tmDrops, _ = sw.TM().Stats()
	inv := sw.Inventory()
	if inv.Total() != 0 {
		t.Errorf("inventory not empty after drain: %+v", inv)
	}
	accepted = st.RxPackets + st.Generated
	accounted = st.TxPackets + st.PipelineDrops + st.TxDroppedLinkDown + tmDrops
	if accepted != accounted {
		t.Errorf("conservation broken after drain: accepted=%d accounted=%d", accepted, accounted)
	}
}
