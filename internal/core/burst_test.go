package core

import (
	"testing"

	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

const burstFrames = 64

// burstForwardRig is p4ForwardRig's vectorized twin: the same compiled
// µP4 forward program, but each step injects a whole burst of frames in
// one InjectBurst call and advances the scheduler far enough to drain
// it. With noBurst the switch executes the identical workload one slot
// per wakeup — the per-packet differential oracle.
func burstForwardRig(tb testing.TB, noBurst bool) (step func(), sw *Switch, inst *p4.Instance) {
	sched := sim.NewScheduler()
	sw = New(Config{NoBurst: noBurst}, EventDriven(), sched)
	inst = p4.MustCompile(forwardProgramSrc).Instantiate("fwd", p4.Options{Interpret: false})
	if err := inst.InstallEntry("fwd", []uint64{uint64(packet.IP4(10, 1, 0, 1))}, nil, 0, "set_port", 1); err != nil {
		tb.Fatal(err)
	}
	if err := inst.InstallEntry("fwd", []uint64{uint64(packet.IP4(10, 0, 0, 1))}, nil, 0, "set_port", 0); err != nil {
		tb.Fatal(err)
	}
	sw.MustLoad(inst.Program())

	frames := make([][]byte, burstFrames)
	for i := range frames {
		frames[i] = packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
			SrcPort: uint16(1 + i%4), DstPort: 2, Proto: packet.ProtoUDP,
		}})
	}
	gap := (10 * sim.Gbps).ByteTime(len(frames[0]) + WireOverhead)
	step = func() {
		sw.InjectBurst(0, frames)
		sched.Run(sched.Now() + burstFrames*gap)
	}
	// Warm the rx rings, packet pool, TM queues, and the burst request
	// slices past their steady-state sizes.
	for i := 0; i < 100; i++ {
		step()
	}
	return step, sw, inst
}

// TestSwitchBurstForwardZeroAlloc asserts the vectorized forward path —
// InjectBurst through burst pipeline slots to bulk TM enqueue — performs
// zero heap allocations in steady state, like its per-packet twin
// TestSwitchForwardZeroAlloc.
func TestSwitchBurstForwardZeroAlloc(t *testing.T) {
	step, sw, _ := burstForwardRig(t, false)
	before := sw.Stats().TxPackets
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("burst forward path allocates %v per burst, want 0", avg)
	}
	if sw.Stats().TxPackets == before {
		t.Fatal("nothing forwarded during the measurement")
	}
}

// TestSwitchBurstEquivalence drives the same vectorized workload through
// the burst engine and the per-packet oracle (Config.NoBurst) and
// requires identical switch stats, register state, counters, and table
// stats — the switch-level half of the burst differential.
func TestSwitchBurstEquivalence(t *testing.T) {
	type snapshot struct {
		stats           Stats
		occ, flow, tx   [8]int64
		ports0, ports1  uint64
		lookups, misses uint64
	}
	snap := func(noBurst bool) snapshot {
		step, sw, inst := burstForwardRig(t, noBurst)
		for i := 0; i < 200; i++ {
			step()
		}
		var s snapshot
		s.stats = sw.Stats()
		for i := 0; i < 8; i++ {
			s.occ[i] = inst.Register("occ").True(uint32(i))
			s.flow[i] = inst.Register("flowbytes").True(uint32(i * 33))
			s.tx[i] = inst.Register("txbytes").True(uint32(i))
		}
		s.ports0, _ = inst.Program().Counter("ports").Value(0)
		s.ports1, _ = inst.Program().Counter("ports").Value(1)
		s.lookups, s.misses = inst.Table("fwd").Stats()
		return s
	}
	burst := snap(false)
	oracle := snap(true)
	if burst != oracle {
		t.Fatalf("burst engine diverges from per-packet oracle:\nburst:  %+v\noracle: %+v", burst, oracle)
	}
	if burst.stats.TxPackets == 0 {
		t.Fatalf("rig forwarded nothing: %+v", burst)
	}
}

// TestBurstInjectLinkDown pins InjectBurst's port-down accounting: every
// frame of a burst offered to a downed port is one RxDropped.
func TestBurstInjectLinkDown(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{Ports: 2}, EventDriven(), sched)
	sw.MustLoad(xconnect())
	sw.SetLink(0, false)
	frames := [][]byte{frame(100, 1, 2), frame(100, 1, 2), frame(100, 1, 2)}
	sw.InjectBurst(0, frames)
	if got := sw.Stats().RxDropped; got != 3 {
		t.Fatalf("RxDropped = %d after burst into downed port, want 3", got)
	}
	sched.Run(sim.Millisecond)
	if got := sw.Stats().TxPackets; got != 0 {
		t.Fatalf("TxPackets = %d, want 0 (all frames dropped at rx)", got)
	}
}

// BenchmarkSwitchForwardPathBurst measures the vectorized forward path:
// one 64-frame InjectBurst per iteration, executed by the burst slot
// loop (0 allocs/op). Compare ns/op ÷ 64 against the per-frame cost of
// the BurstOff variant below — the burst engine's per-frame win.
func BenchmarkSwitchForwardPathBurst(b *testing.B) {
	step, sw, _ := burstForwardRig(b, false)
	benchForward(b, step, sw)
}

// BenchmarkSwitchForwardPathBurstOff runs the identical 64-frame
// workload through the per-packet oracle (Config.NoBurst): one pipeline
// wakeup per slot, the dispatch cost the burst engine amortizes.
func BenchmarkSwitchForwardPathBurstOff(b *testing.B) {
	step, sw, _ := burstForwardRig(b, true)
	benchForward(b, step, sw)
}
