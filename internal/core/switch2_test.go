package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

func TestMaxEventsPerSlot(t *testing.T) {
	// A width-1 merger can only attach one event per slot; with both an
	// enqueue and a dequeue pending, the lower-priority one waits for
	// the next slot.
	sched := sim.NewScheduler()
	sw := New(Config{MaxEventsPerSlot: 1}, EventDriven(), sched)
	p := xconnect()
	var order []events.Kind
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) { order = append(order, ctx.Ev.Kind) })
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) { order = append(order, ctx.Ev.Kind) })
	sw.MustLoad(p)
	sw.Inject(0, frame(100, 1, 2))
	sched.Run(sim.Millisecond)
	if len(order) != 2 {
		t.Fatalf("events handled = %v", order)
	}
	// Dequeue outranks enqueue in the default merger priority; both
	// were eventually delivered despite the narrow bus.
	st := sw.Stats()
	if st.EventsMerged[events.BufferEnqueue] != 1 || st.EventsMerged[events.BufferDequeue] != 1 {
		t.Errorf("merged: %v", st.EventsMerged)
	}
}

func TestStopGenerators(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("gen")
	p.HandleFunc(events.GeneratedPacket, func(ctx *pisa.Context) { ctx.EgressPort = 0 })
	sw.MustLoad(p)
	if err := sw.AddGenerator(100*sim.Microsecond, func(uint64) ([]byte, int) {
		return packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(1), &packet.Probe{}), -1
	}); err != nil {
		t.Fatal(err)
	}
	sched.Run(sim.Millisecond)
	n := sw.Stats().Generated
	if n == 0 {
		t.Fatal("generator idle")
	}
	sw.StopGenerators()
	sched.Run(5 * sim.Millisecond)
	if sw.Stats().Generated != n {
		t.Errorf("generator kept producing after StopGenerators: %d -> %d", n, sw.Stats().Generated)
	}
}

func TestRecirculationGuardAgainstLoops(t *testing.T) {
	// A program that recirculates forever must not wedge the switch
	// beyond its own packet: other traffic still flows.
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := pisa.NewProgram("loop")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if packet.EtherTypeOf(ctx.Pkt.Data) == packet.EtherTypeProbe {
			ctx.Recirculate = true // loops forever
			return
		}
		ctx.EgressPort = 1
	})
	p.HandleFunc(events.RecirculatedPacket, func(ctx *pisa.Context) {
		ctx.Recirculate = true
	})
	sw.MustLoad(p)
	sw.Inject(0, packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(1), &packet.Probe{}))
	for i := 0; i < 10; i++ {
		sw.Inject(2, frame(100, 1, 2))
	}
	sched.Run(100 * sim.Microsecond)
	if got := sw.Stats().TxPackets; got != 10 {
		t.Errorf("normal traffic delivered %d of 10 despite recirculating packet", got)
	}
	if sw.Stats().Recirculated < 100 {
		t.Errorf("recirculations = %d, expected a busy loop", sw.Stats().Recirculated)
	}
}

func TestEgressHandlerDropsAndEmits(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := xconnect()
	// Egress pipeline drops every second data packet and emits a report
	// for each drop (the handler sees report frames too, so it filters
	// to IPv4).
	var n int
	p.HandleFunc(events.EgressPacket, func(ctx *pisa.Context) {
		if !ctx.Has(packet.LayerIPv4) {
			return
		}
		n++
		if n%2 == 0 {
			rep := &packet.Report{Kind: packet.ReportAnomaly, V0: uint64(n)}
			ctx.Emit(packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(3), rep), 2)
			ctx.Drop()
		}
	})
	sw.MustLoad(p)
	var dataTx, repTx int
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port == 2 {
			repTx++
		} else {
			dataTx++
		}
	}
	for i := 0; i < 6; i++ {
		sw.Inject(0, frame(100, 1, 2))
	}
	sched.Run(sim.Millisecond)
	if dataTx != 3 || repTx != 3 {
		t.Errorf("dataTx=%d repTx=%d, want 3/3", dataTx, repTx)
	}
	if sw.Stats().PipelineDrops != 3 {
		t.Errorf("drops = %d", sw.Stats().PipelineDrops)
	}
}

func TestSwitchDeterminism(t *testing.T) {
	// Two identical runs produce byte-identical statistics.
	run := func() Stats {
		sched := sim.NewScheduler()
		sw := New(Config{}, EventDriven(), sched)
		p := xconnect()
		occ := p.AddRegister(pisa.NewAggregatedRegister("occ", 16,
			events.BufferEnqueue, events.BufferDequeue))
		p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
		})
		p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
		})
		sw.MustLoad(p)
		sw.ConfigureTimer(0, 10*sim.Microsecond)
		p.HandleFunc(events.TimerExpiration, func(*pisa.Context) {})
		rng := sim.NewRNG(9)
		for i := 0; i < 500; i++ {
			port := rng.Intn(4)
			size := 60 + rng.Intn(1400)
			at := sim.Time(rng.Intn(1_000_000)) * sim.Microsecond / 1000
			sched.At(at, func() { sw.Inject(port, frame(size, byte(port), byte(port^1))) })
		}
		sched.Run(5 * sim.Millisecond)
		return sw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestOnSlotTrace(t *testing.T) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	p := xconnect()
	p.HandleFunc(events.BufferEnqueue, func(*pisa.Context) {})
	sw.MustLoad(p)
	var slots []SlotInfo
	sw.OnSlot = func(info SlotInfo) { slots = append(slots, info) }
	sw.Inject(0, frame(100, 1, 2))
	sched.Run(sim.Millisecond)
	if len(slots) < 2 {
		t.Fatalf("slots traced = %d", len(slots))
	}
	if slots[0].PktKind != events.IngressPacket || slots[0].PktLen != 100 || slots[0].Empty {
		t.Errorf("first slot = %+v", slots[0])
	}
	// The enqueue event rides a later (empty) slot.
	found := false
	for _, s := range slots[1:] {
		for _, k := range s.Events {
			if k == events.BufferEnqueue {
				found = true
				if !s.Empty {
					t.Error("enqueue event should ride an empty slot here (no more packets)")
				}
			}
		}
	}
	if !found {
		t.Error("enqueue event not traced")
	}
}

func TestNoPiggybackDedicatedSlots(t *testing.T) {
	// With NoPiggyback, packet slots never carry events: every event
	// rides its own empty slot.
	sched := sim.NewScheduler()
	sw := New(Config{NoPiggyback: true}, EventDriven(), sched)
	p := xconnect()
	p.HandleFunc(events.BufferEnqueue, func(*pisa.Context) {})
	sw.MustLoad(p)
	var pktSlotWithEvents, eventSlots int
	sw.OnSlot = func(info SlotInfo) {
		if !info.Empty && len(info.Events) > 0 {
			pktSlotWithEvents++
		}
		if info.Empty && len(info.Events) > 0 {
			eventSlots++
		}
	}
	for i := 0; i < 5; i++ {
		sw.Inject(0, frame(100, 1, 2))
	}
	sched.Run(sim.Millisecond)
	if pktSlotWithEvents != 0 {
		t.Errorf("%d packet slots carried events despite NoPiggyback", pktSlotWithEvents)
	}
	if eventSlots != 5 {
		t.Errorf("event slots = %d, want 5", eventSlots)
	}
	if sw.Stats().TxPackets != 5 {
		t.Errorf("tx = %d", sw.Stats().TxPackets)
	}
}
