package core

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// telName returns the switch's name for telemetry instruments.
func (s *Switch) telName() string {
	if s.cfg.Name != "" {
		return s.cfg.Name
	}
	return "switch"
}

// EnableTelemetry attaches the switch to a collector: it creates the
// switch's probe (per-cycle/slot/merger counters plus the "sw.<name>"
// trace stream), instruments each loaded shared register's drain path,
// and — when the collector's SamplePeriod is set — arms a sim-time
// sampler for TM port occupancy and event-FIFO depth gauges. All
// instruments are created here, during single-threaded setup; the run
// itself only performs field increments through s.tel.
//
// Call once per switch before running. A program loaded after this call
// is instrumented by Load.
func (s *Switch) EnableTelemetry(c *telemetry.Collector) {
	if s.telSampler != nil {
		s.telSampler.Stop()
		s.telSampler = nil
	}
	s.telCol = c
	if c == nil {
		s.tel = nil
		return
	}
	s.tel = c.NewSwitchProbe(s.telName())
	s.instrumentRegisters()

	period := c.Options().SamplePeriod
	if period <= 0 {
		return
	}
	// Pre-resolve every gauge so the sampler never touches the registry.
	pre := "sw." + s.telName() + "."
	reg := c.Registry()
	portBytes := make([]*telemetry.Gauge, s.cfg.Ports)
	for p := range portBytes {
		portBytes[p] = reg.Gauge(fmt.Sprintf("%stm.port%d.bytes", pre, p))
	}
	var evqLen [events.NumKinds]*telemetry.Gauge
	for k := 0; k < events.NumKinds; k++ {
		evqLen[k] = reg.Gauge(pre + "evq." + events.Kind(k).String() + ".len")
	}
	// The sampler runs on the switch's own scheduler at a fixed simulated
	// period, so its firing instants — and therefore the gauges' final
	// values — are identical at any domain count.
	s.telSampler = s.sched.Every(period, func() {
		for p, g := range portBytes {
			g.Set(int64(s.tmgr.PortBytes(p)))
		}
		for k := 0; k < events.NumKinds; k++ {
			evqLen[k].Set(int64(s.evq[k].Len()))
		}
	})
}

// instrumentRegisters hooks each shared register's drain path to a
// RegisterProbe (staleness histogram + commit stream). Called from
// EnableTelemetry and again from Load, whichever happens last.
func (s *Switch) instrumentRegisters() {
	if s.telCol == nil || s.prog == nil {
		return
	}
	for _, r := range s.prog.Registers() {
		r := r
		rp := s.telCol.NewRegisterProbe(s.telName(), r.Name())
		r.SetDrainHook(func(idx uint32, lag uint64) {
			// During a drain fast-forward the register's cycle runs ahead
			// of the scheduler clock (which is parked at the slot that
			// triggered the batch); reconstruct the instant the drain's own
			// cycle would have run at. On ordinary cycles the register's
			// cycle equals the slot cycle and this is exactly Now().
			at := s.slotNow + sim.Time(r.Cycle()-s.slotCycle)*s.cycleTime
			rp.ObserveDrain(at, idx, lag)
		})
	}
}
