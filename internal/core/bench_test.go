package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// BenchmarkSwitchPacketsPerSecond measures the simulator's end-to-end
// throughput in simulated packets per wall-clock second: one forwarded
// min-size packet per iteration including enqueue/dequeue event handling
// and register aggregation.
func BenchmarkSwitchPacketsPerSecond(b *testing.B) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("bench")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(prog)
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}})
	gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Inject(0, data)
		sched.Run(sched.Now() + gap)
	}
	b.StopTimer()
	sched.Run(sched.Now() + sim.Millisecond) // drain the tail
	if sw.Stats().TxPackets == 0 {
		b.Fatal("nothing forwarded")
	}
}

// timerCycleSwitch builds a switch whose only work is a periodic timer
// event, so advancing the scheduler by one period exercises exactly the
// per-cycle machinery: timer rearm, event queue, merger slot formation
// with the reusable empty-packet carrier, handler dispatch, and the
// cycle lane's self-rearm.
func timerCycleSwitch(b testing.TB) (*sim.Scheduler, *Switch, sim.Time) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("cycle")
	prog.HandleFunc(events.TimerExpiration, func(*pisa.Context) {})
	sw.MustLoad(prog)
	period := 10 * sw.CycleTime()
	if err := sw.ConfigureTimer(0, period); err != nil {
		b.Fatal(err)
	}
	// Warm every free list and ring buffer past its steady-state size.
	sched.Run(sched.Now() + 200*period)
	return sched, sw, period
}

// BenchmarkSwitchCycle measures the per-cycle cost of the slot machinery
// alone (no packets on the wire): one timer event per scheduler advance.
func BenchmarkSwitchCycle(b *testing.B) {
	sched, sw, period := timerCycleSwitch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(sched.Now() + period)
	}
	b.StopTimer()
	if sw.Stats().Cycles == 0 {
		b.Fatal("no cycles ran")
	}
}

// nativeForwardRig builds an event-driven switch with handwritten Go
// handlers and register aggregation, and returns a step that forwards
// one min-size packet end to end, with every pool and ring warmed past
// its steady-state size. It is the program-cost-free floor the µP4
// backends are measured against.
func nativeForwardRig(tb testing.TB) (step func(), sw *Switch) {
	sched := sim.NewScheduler()
	sw = New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("fwd")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		_ = occ.Read(ctx, uint32(ctx.Pkt.InPort^1))
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(prog)
	return forwardStep(sched, sw), sw
}

// forwardProgramSrc is the µP4 program behind BenchmarkSwitchForwardPath:
// a stateful telemetry-and-forward pipeline with per-flow hashing, two
// register accesses, an exact table with a parameterized action, a byte
// counter, and per-event accounting on the enqueue/dequeue/transmit
// threads — the per-packet work profile of the paper's example programs.
const forwardProgramSrc = `
shared_register<bit<32>>(64) occ;
shared_register<bit<64>>(256) flowbytes;
shared_register<bit<64>>(64) txbytes;
counter(8) ports;
action set_port(p) { forward(p); ports.count(p); }
action toss() { drop(); }
table fwd {
    key = { hdr.ip.dst : exact; }
    actions = { set_port; toss; }
    default_action = toss();
}
control Ingress {
    bit<32> h; bit<32> q; bit<64> fb; bit<64> ew; bit<64> score;
    bit<16> fl; bit<64> dig; bit<64> t; bit<64> u;
    apply {
        hash(h, hdr.ip.src, hdr.ip.dst, hdr.udp.sport, hdr.udp.dport, hdr.ip.proto);
        flowbytes.read(h % 256, fb);
        occ.read(std.ingress_port ^ 1, q);
        t = fb >> 3;
        ew = fb - t;
        t = std.pkt_len << 5;
        ew = ew + t;
        t = ew >> 10;
        u = fb >> 12;
        score = max(t, u) + min(q, 4096);
        score = score + ssub(score, 9000) + (hdr.ip.ttl << 2) + (hdr.ip.len ^ hdr.udp.dport);
        t = score >> 5;
        t = t * 3;
        u = score * 7;
        score = u + t;
        score = score % 65536;
        t = score & 1023;
        ew = ew + t;
        t = score >> 8;
        u = ew >> 9;
        ew = ew - min(t, u);
        fl = (hdr.udp.sport ^ hdr.udp.dport) + (h & 0xff);
        dig = fb << 1;
        t = ew << 2;
        dig = dig ^ t;
        t = q << 3;
        dig = dig ^ t;
        t = dig >> 7;
        u = dig >> 13;
        dig = dig + t;
        dig = dig + u;
        t = dig >> 31;
        t = dig ^ t;
        dig = t * 0x9e377;
        t = dig & 0x3f;
        fl = fl + t;
        fl = fl - min(fl, 52);
        dig = dig ^ (fl * 31) ^ (std.pkt_len * 7);
        t = dig & 255;
        score = score + t;
        u = dig & 127;
        score = score - ssub(u, 64);
        flowbytes.write(h % 256, fb + std.pkt_len + (ew & 1));
        fwd.apply();
        if (q > 1000000 || score > 64000) { set_tos(3); }
        if (fl > 65000 && dig % 5 == 4) { set_queue(1); }
        if (hdr.ip.ttl < 2) { drop(); }
    }
}
control Enqueue {
    bit<32> d;
    apply {
        d = ev.pkt_len + (ev.pkt_len >> 2) - min(ev.queue, 8);
        occ.add(ev.port, ev.pkt_len + (d >> 31));
    }
}
control Dequeue {
    bit<32> d;
    apply {
        d = ev.pkt_len + (ev.pkt_len >> 3);
        occ.add(ev.port, 0 - ev.pkt_len - (d >> 31));
    }
}
control Transmitted {
    apply {
        txbytes.add(ev.port, ev.pkt_len);
    }
}`

// p4ForwardRig is nativeForwardRig's µP4 twin: the same end-to-end
// forward path with the program supplied as µP4 source and executed by
// the selected backend.
func p4ForwardRig(tb testing.TB, interp bool) (step func(), sw *Switch, inst *p4.Instance) {
	sched := sim.NewScheduler()
	sw = New(Config{}, EventDriven(), sched)
	inst = p4.MustCompile(forwardProgramSrc).Instantiate("fwd", p4.Options{Interpret: interp})
	if err := inst.InstallEntry("fwd", []uint64{uint64(packet.IP4(10, 1, 0, 1))}, nil, 0, "set_port", 1); err != nil {
		tb.Fatal(err)
	}
	if err := inst.InstallEntry("fwd", []uint64{uint64(packet.IP4(10, 0, 0, 1))}, nil, 0, "set_port", 0); err != nil {
		tb.Fatal(err)
	}
	sw.MustLoad(inst.Program())
	return forwardStep(sched, sw), sw, inst
}

// forwardStep injects one min-size packet and advances the scheduler one
// line-rate gap, after warming every pool and ring past steady state.
func forwardStep(sched *sim.Scheduler, sw *Switch) func() {
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}})
	gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
	step := func() {
		sw.Inject(0, data)
		sched.Run(sched.Now() + gap)
	}
	for i := 0; i < 300; i++ {
		step()
	}
	return step
}

// BenchmarkSwitchForwardPath measures the steady-state pooled forward
// path running the compiled µP4 program: inject -> rx queue -> pipeline
// slot -> register aggregation -> TM -> egress -> transmit -> release,
// one packet per iteration (0 allocs/op). The Interp variant runs the
// same program on the AST-interpreter oracle, the Native variant the
// handwritten-Go floor.
func BenchmarkSwitchForwardPath(b *testing.B) {
	step, sw, _ := p4ForwardRig(b, false)
	benchForward(b, step, sw)
}

func BenchmarkSwitchForwardPathInterp(b *testing.B) {
	step, sw, _ := p4ForwardRig(b, true)
	benchForward(b, step, sw)
}

func BenchmarkSwitchForwardPathNative(b *testing.B) {
	step, sw := nativeForwardRig(b)
	benchForward(b, step, sw)
}

func benchForward(b *testing.B, step func(), sw *Switch) {
	before := sw.Stats().TxPackets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	if sw.Stats().TxPackets == before {
		b.Fatal("nothing forwarded")
	}
}

// TestSwitchForwardZeroAlloc asserts the per-packet forward path performs
// zero heap allocations in steady state — for the compiled µP4 backend
// and for handwritten Go handlers — the pooled-lifecycle regression
// guard next to the per-cycle one below.
func TestSwitchForwardZeroAlloc(t *testing.T) {
	step, sw, _ := p4ForwardRig(t, false)
	before := sw.Stats().TxPackets
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Errorf("compiled µP4 forward path allocates %v per packet, want 0", avg)
	}
	if sw.Stats().TxPackets == before {
		t.Fatal("nothing forwarded during the measurement")
	}
	nstep, nsw := nativeForwardRig(t)
	nbefore := nsw.Stats().TxPackets
	if avg := testing.AllocsPerRun(500, nstep); avg != 0 {
		t.Errorf("native forward path allocates %v per packet, want 0", avg)
	}
	if nsw.Stats().TxPackets == nbefore {
		t.Fatal("nothing forwarded during the native measurement")
	}
}

// TestSwitchForwardBackendsIdentical drives the µP4 forward rig for the
// same packet count under both backends and requires identical switch
// stats and register/counter state: the end-to-end analogue of the
// package-level differential tests in internal/p4.
func TestSwitchForwardBackendsIdentical(t *testing.T) {
	type snapshot struct {
		stats           Stats
		occ, flow, tx   [8]int64
		ports0, ports1  uint64
		lookups, misses uint64
	}
	snap := func(interp bool) snapshot {
		step, sw, inst := p4ForwardRig(t, interp)
		for i := 0; i < 2000; i++ {
			step()
		}
		var s snapshot
		s.stats = sw.Stats()
		for i := 0; i < 8; i++ {
			s.occ[i] = inst.Register("occ").True(uint32(i))
			s.flow[i] = inst.Register("flowbytes").True(uint32(i * 33))
			s.tx[i] = inst.Register("txbytes").True(uint32(i))
		}
		s.ports0, _ = inst.Program().Counter("ports").Value(0)
		s.ports1, _ = inst.Program().Counter("ports").Value(1)
		s.lookups, s.misses = inst.Table("fwd").Stats()
		return s
	}
	compiled := snap(false)
	interp := snap(true)
	if compiled != interp {
		t.Fatalf("backend divergence:\ncompiled: %+v\ninterp:   %+v", compiled, interp)
	}
	if compiled.stats.TxPackets == 0 || compiled.ports1 == 0 {
		t.Fatalf("rig forwarded nothing: %+v", compiled)
	}
}

// TestSwitchCycleZeroAlloc is the regression guard for the scheduler and
// merger hot-path pooling: in steady state a pipeline cycle driven by
// timer events must not allocate at all. Before the free-list scheduler
// and the cycle lane, every cycle allocated a schedEvent plus a wake
// closure; a regression here reintroduces per-cycle garbage across every
// experiment.
func TestSwitchCycleZeroAlloc(t *testing.T) {
	sched, sw, period := timerCycleSwitch(t)
	cyclesBefore := sw.Stats().Cycles
	if avg := testing.AllocsPerRun(500, func() {
		sched.Run(sched.Now() + period)
	}); avg != 0 {
		t.Errorf("per-cycle hot path allocates %v per period, want 0", avg)
	}
	if sw.Stats().Cycles == cyclesBefore {
		t.Fatal("no cycles ran during the measurement")
	}
}
