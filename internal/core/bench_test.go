package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// BenchmarkSwitchPacketsPerSecond measures the simulator's end-to-end
// throughput in simulated packets per wall-clock second: one forwarded
// min-size packet per iteration including enqueue/dequeue event handling
// and register aggregation.
func BenchmarkSwitchPacketsPerSecond(b *testing.B) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("bench")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(prog)
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}})
	gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Inject(0, data)
		sched.Run(sched.Now() + gap)
	}
	b.StopTimer()
	sched.Run(sched.Now() + sim.Millisecond) // drain the tail
	if sw.Stats().TxPackets == 0 {
		b.Fatal("nothing forwarded")
	}
}
