package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// BenchmarkSwitchPacketsPerSecond measures the simulator's end-to-end
// throughput in simulated packets per wall-clock second: one forwarded
// min-size packet per iteration including enqueue/dequeue event handling
// and register aggregation.
func BenchmarkSwitchPacketsPerSecond(b *testing.B) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("bench")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(prog)
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}})
	gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Inject(0, data)
		sched.Run(sched.Now() + gap)
	}
	b.StopTimer()
	sched.Run(sched.Now() + sim.Millisecond) // drain the tail
	if sw.Stats().TxPackets == 0 {
		b.Fatal("nothing forwarded")
	}
}

// timerCycleSwitch builds a switch whose only work is a periodic timer
// event, so advancing the scheduler by one period exercises exactly the
// per-cycle machinery: timer rearm, event queue, merger slot formation
// with the reusable empty-packet carrier, handler dispatch, and the
// cycle lane's self-rearm.
func timerCycleSwitch(b testing.TB) (*sim.Scheduler, *Switch, sim.Time) {
	sched := sim.NewScheduler()
	sw := New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("cycle")
	prog.HandleFunc(events.TimerExpiration, func(*pisa.Context) {})
	sw.MustLoad(prog)
	period := 10 * sw.CycleTime()
	if err := sw.ConfigureTimer(0, period); err != nil {
		b.Fatal(err)
	}
	// Warm every free list and ring buffer past its steady-state size.
	sched.Run(sched.Now() + 200*period)
	return sched, sw, period
}

// BenchmarkSwitchCycle measures the per-cycle cost of the slot machinery
// alone (no packets on the wire): one timer event per scheduler advance.
func BenchmarkSwitchCycle(b *testing.B) {
	sched, sw, period := timerCycleSwitch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(sched.Now() + period)
	}
	b.StopTimer()
	if sw.Stats().Cycles == 0 {
		b.Fatal("no cycles ran")
	}
}

// forwardRig builds an event-driven switch with register aggregation and
// returns a step that forwards one min-size packet end to end, with every
// pool and ring warmed past its steady-state size.
func forwardRig(tb testing.TB) (step func(), sw *Switch) {
	sched := sim.NewScheduler()
	sw = New(Config{}, EventDriven(), sched)
	prog := pisa.NewProgram("fwd")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		_ = occ.Read(ctx, uint32(ctx.Pkt.InPort^1))
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(prog)
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}})
	gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
	step = func() {
		sw.Inject(0, data)
		sched.Run(sched.Now() + gap)
	}
	for i := 0; i < 300; i++ {
		step()
	}
	return step, sw
}

// BenchmarkSwitchForwardPath measures the steady-state pooled forward
// path: inject -> rx queue -> pipeline slot -> register aggregation -> TM
// -> egress -> transmit -> release, one packet per iteration (0
// allocs/op).
func BenchmarkSwitchForwardPath(b *testing.B) {
	step, sw := forwardRig(b)
	before := sw.Stats().TxPackets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	if sw.Stats().TxPackets == before {
		b.Fatal("nothing forwarded")
	}
}

// TestSwitchForwardZeroAlloc asserts the per-packet forward path performs
// zero heap allocations in steady state — the pooled-lifecycle regression
// guard next to the per-cycle one below.
func TestSwitchForwardZeroAlloc(t *testing.T) {
	step, sw := forwardRig(t)
	before := sw.Stats().TxPackets
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Errorf("per-packet forward path allocates %v per packet, want 0", avg)
	}
	if sw.Stats().TxPackets == before {
		t.Fatal("nothing forwarded during the measurement")
	}
}

// TestSwitchCycleZeroAlloc is the regression guard for the scheduler and
// merger hot-path pooling: in steady state a pipeline cycle driven by
// timer events must not allocate at all. Before the free-list scheduler
// and the cycle lane, every cycle allocated a schedEvent plus a wake
// closure; a regression here reintroduces per-cycle garbage across every
// experiment.
func TestSwitchCycleZeroAlloc(t *testing.T) {
	sched, sw, period := timerCycleSwitch(t)
	cyclesBefore := sw.Stats().Cycles
	if avg := testing.AllocsPerRun(500, func() {
		sched.Run(sched.Now() + period)
	}); avg != 0 {
		t.Errorf("per-cycle hot path allocates %v per period, want 0", avg)
	}
	if sw.Stats().Cycles == cyclesBefore {
		t.Fatal("no cycles ran during the measurement")
	}
}
