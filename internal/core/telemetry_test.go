package core

import (
	"bytes"
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// BenchmarkSwitchCycleTelemetryOff is BenchmarkSwitchCycle with the probe
// points compiled in but no collector attached — the configuration every
// experiment runs in by default. Compare its ns/op against
// BenchmarkSwitchCycle: the nil-guard cost must stay in the noise, and it
// asserts 0 allocs/op outright so a regression fails the benchmark run.
func BenchmarkSwitchCycleTelemetryOff(b *testing.B) {
	sched, sw, period := timerCycleSwitch(b)
	if sw.tel != nil {
		b.Fatal("telemetry unexpectedly enabled")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(sched.Now() + period)
	}
	b.StopTimer()
	if sw.Stats().Cycles == 0 {
		b.Fatal("no cycles ran")
	}
	if b.N > 100 {
		if allocs := testing.AllocsPerRun(100, func() {
			sched.Run(sched.Now() + period)
		}); allocs != 0 {
			b.Fatalf("telemetry-off cycle allocates %v allocs/op, want 0", allocs)
		}
	}
}

// telemetryTestSwitch runs a small forwarding scenario with telemetry
// enabled: packets on two ports, an aggregated register updated by
// enqueue/dequeue events, and a timer.
func telemetryTestSwitch(t *testing.T) (*Switch, *telemetry.Collector) {
	t.Helper()
	sched := sim.NewScheduler()
	sw := New(Config{Name: "t0"}, EventDriven(), sched)
	col := telemetry.New(telemetry.Options{
		TraceCap:     1 << 12,
		SamplePeriod: 10 * sim.Microsecond,
	})
	sw.EnableTelemetry(col)

	prog := pisa.NewProgram("teltest")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		_ = occ.Read(ctx, uint32(ctx.Pkt.InPort^1))
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.TimerExpiration, func(*pisa.Context) {})
	sw.MustLoad(prog)
	if err := sw.ConfigureTimer(0, 100*sw.CycleTime()); err != nil {
		t.Fatal(err)
	}

	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}})
	gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
	for i := 0; i < 200; i++ {
		sw.Inject(0, data)
		sw.Inject(1, data)
		sched.Run(sched.Now() + gap)
	}
	sched.Run(sched.Now() + sim.Millisecond)
	return sw, col
}

// TestSwitchTelemetryCountersMatchStats checks that every probe counter
// agrees with the switch's own Stats — the two accountings are written at
// the same probe points and must never diverge.
func TestSwitchTelemetryCountersMatchStats(t *testing.T) {
	sw, col := telemetryTestSwitch(t)
	st := sw.Stats()
	p := sw.tel

	if got, want := p.Cycles.Value(), st.Cycles; got != want {
		t.Errorf("cycles counter %d, stats %d", got, want)
	}
	if got, want := p.PacketSlots.Value(), st.PacketSlots; got != want {
		t.Errorf("packet slots %d, stats %d", got, want)
	}
	if got, want := p.EmptySlots.Value(), st.EmptySlots; got != want {
		t.Errorf("empty slots %d, stats %d", got, want)
	}
	if got, want := p.DrainSlots.Value(), st.DrainSlots; got != want {
		t.Errorf("drain slots %d, stats %d", got, want)
	}
	if st.PacketSlots == 0 || st.EmptySlots == 0 {
		t.Fatalf("scenario too small: packetSlots=%d emptySlots=%d", st.PacketSlots, st.EmptySlots)
	}
	for k := 0; k < events.NumKinds; k++ {
		if got, want := p.Merged[k].Value(), st.EventsMerged[k]; got != want {
			t.Errorf("%v merged %d, stats %d", events.Kind(k), got, want)
		}
		if got, want := p.Enq[k].Shed.Value(), st.EventsShed[k]; got != want {
			t.Errorf("%v shed %d, stats %d", events.Kind(k), got, want)
		}
		if got, want := p.Enq[k].Coalesced.Value(), st.EventsCoalesced[k]; got != want {
			t.Errorf("%v coalesced %d, stats %d", events.Kind(k), got, want)
		}
		if got, want := p.Enq[k].Dropped.Value(), st.EventsDropped[k]; got != want {
			t.Errorf("%v dropped %d, stats %d", events.Kind(k), got, want)
		}
	}
	// The merger split must cover every merged non-packet event.
	var nonPacket uint64
	for k := 0; k < events.NumKinds; k++ {
		if !events.Kind(k).IsPacketEvent() && events.Kind(k) != events.EgressPacket {
			nonPacket += st.EventsMerged[k]
		}
	}
	if got := p.Piggybacked.Value() + p.Injected.Value(); got != nonPacket {
		t.Errorf("piggybacked %d + injected %d != merged non-packet events %d",
			p.Piggybacked.Value(), p.Injected.Value(), nonPacket)
	}
	if p.Piggybacked.Value() == 0 || p.Injected.Value() == 0 {
		t.Errorf("scenario should exercise both merger paths: piggy=%d injected=%d",
			p.Piggybacked.Value(), p.Injected.Value())
	}

	// Periodic gauges were armed (Registry getters create on miss, so
	// existence must be checked against the snapshot).
	wantGauges := []string{
		"sw.t0.evq." + events.TimerExpiration.String() + ".len",
		"sw.t0.tm.port0.bytes",
	}
	have := map[string]bool{}
	for _, m := range col.Registry().Snapshot() {
		if m.Type == "gauge" {
			have[m.Name] = true
		}
	}
	for _, name := range wantGauges {
		if !have[name] {
			t.Errorf("missing sampled gauge %q", name)
		}
	}
}

// TestSwitchTelemetryLifecycleStages checks that the trace saw all five
// lifecycle stages and that the register's staleness histogram agrees
// with the aggregation metrics.
func TestSwitchTelemetryLifecycleStages(t *testing.T) {
	sw, col := telemetryTestSwitch(t)

	// Decode the JSONL export (exercising the exporter on real data) and
	// require every lifecycle stage to appear.
	b, err := telemetry.EncodeJSONL([]telemetry.RunExport{{Label: "t", C: col}})
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"gen", "enqueue", "merge", "slot", "commit"} {
		if !bytes.Contains(b, []byte(`"stage":"`+stage+`"`)) {
			t.Errorf("lifecycle stage %q never traced", stage)
		}
	}

	// Staleness histogram vs the register's own metrics.
	reg := sw.Program().Registers()[0]
	am, _ := reg.Metrics()
	h := col.Registry().Histogram("sw.t0.reg.occ.staleness.cycles")
	if h.Count() != am.Drained {
		t.Errorf("histogram count %d != drained %d", h.Count(), am.Drained)
	}
	if h.Max() != am.MaxLag {
		t.Errorf("histogram max %d != MaxLag %d", h.Max(), am.MaxLag)
	}
	if am.Drained == 0 {
		t.Fatal("no drains happened; scenario too small")
	}
	if mb := h.MaxBucket(); mb < 0 || telemetry.BucketLow(mb) > am.MaxLag || telemetry.BucketHigh(mb) < am.MaxLag {
		t.Errorf("max bucket %d does not contain MaxLag %d", mb, am.MaxLag)
	}
}
