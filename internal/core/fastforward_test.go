package core

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// TestDrainFastForwardEquivalence is the core-level differential for the
// idle-cycle drain fast-forward: the same injected workload run with
// fast-forward disabled (cycle lane re-armed once per drain cycle) and
// enabled (batched DrainN replay) must produce identical switch stats,
// identical per-delta drain observations in identical order, and identical
// final register contents.
func TestDrainFastForwardEquivalence(t *testing.T) {
	type obs struct {
		idx uint32
		lag uint64
	}
	run := func(noFF bool) (recs []obs, st Stats, vals []int64) {
		sched := sim.NewScheduler()
		sw := New(Config{NoDrainFastForward: noFF}, EventDriven(), sched)
		prog := pisa.NewProgram("diff")
		occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
			events.BufferEnqueue, events.BufferDequeue))
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			_ = occ.Read(ctx, uint32(ctx.Pkt.InPort^1))
			ctx.EgressPort = ctx.Pkt.InPort ^ 1
		})
		prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
		})
		prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
		})
		sw.MustLoad(prog)
		for _, r := range prog.Registers() {
			r.SetDrainHook(func(idx uint32, lag uint64) {
				recs = append(recs, obs{idx, lag})
			})
		}

		// Bursts separated by idle stretches: each burst leaves aggregation
		// backlog that drains during the gap — the fast-forward's target —
		// and the next burst checks the registers resynchronized exactly.
		data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
		}})
		gap := (10 * sim.Gbps).ByteTime(len(data) + WireOverhead)
		for burst := 0; burst < 5; burst++ {
			for i := 0; i < 8; i++ {
				sw.Inject(i%4, data)
				sched.Run(sched.Now() + gap)
			}
			// Idle stretch: run far past the backlog so both modes go
			// quiet, partially in several Run horizons (the fast-forward
			// must stop at each horizon exactly like the slow path).
			for k := 0; k < 4; k++ {
				sched.Run(sched.Now() + 30*sw.CycleTime())
			}
			sched.Run(sched.Now() + sim.Millisecond)
		}
		for i := uint32(0); i < 64; i++ {
			vals = append(vals, int64(occ.Stale(i)), occ.True(i))
		}
		return recs, sw.Stats(), vals
	}

	slowRecs, slowStats, slowVals := run(true)
	fastRecs, fastStats, fastVals := run(false)

	if len(slowRecs) == 0 {
		t.Fatal("no drains observed; scenario exercises nothing")
	}
	if len(slowRecs) != len(fastRecs) {
		t.Fatalf("drain count differs: slow %d, fast %d", len(slowRecs), len(fastRecs))
	}
	for i := range slowRecs {
		if slowRecs[i] != fastRecs[i] {
			t.Fatalf("drain %d differs: slow %+v, fast %+v", i, slowRecs[i], fastRecs[i])
		}
	}
	if slowStats != fastStats {
		t.Errorf("stats differ:\nslow %+v\nfast %+v", slowStats, fastStats)
	}
	for i := range slowVals {
		if slowVals[i] != fastVals[i] {
			t.Fatalf("register value %d differs: slow %d, fast %d", i, slowVals[i], fastVals[i])
		}
	}
}
