package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// A complete switch in a few lines: load a program that counts buffer
// events while forwarding, inject traffic, run virtual time.
func Example() {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)

	prog := pisa.NewProgram("count-events")
	var enq, deq int
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(*pisa.Context) { enq++ })
	prog.HandleFunc(events.BufferDequeue, func(*pisa.Context) { deq++ })
	if err := sw.Load(prog); err != nil {
		panic(err)
	}

	for i := 0; i < 3; i++ {
		sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP,
		}, TotalLen: 200}))
	}
	sched.Run(sim.Millisecond)

	st := sw.Stats()
	fmt.Printf("forwarded %d packets; saw %d enqueue and %d dequeue events\n",
		st.TxPackets, enq, deq)
	// Output:
	// forwarded 3 packets; saw 3 enqueue and 3 dequeue events
}

// The architecture description controls which events a program may bind:
// timers exist only on the event-driven target.
func ExampleArch() {
	fmt.Println(core.Baseline().Supports(events.TimerExpiration))
	fmt.Println(core.EventDriven().Supports(events.TimerExpiration))
	fmt.Println(len(core.EventDriven().SupportedKinds()))
	// Output:
	// false
	// true
	// 13
}
