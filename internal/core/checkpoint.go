package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file is the switch half of the checkpoint protocol (DESIGN.md
// §13). Snapshot captures every mutable datum of a running switch —
// staging queues, event FIFOs, program externs, the TM, in-flight
// pipeline jobs and transmissions, timers/generators, stats, and the
// packet pool — plus the (at, seq) coordinates of every pending
// scheduler event the switch owns. Restore pours that state into a
// switch rebuilt through the identical construction path (same Config,
// same Load, same ConfigureTimer/AddGenerator/EnableTelemetry calls),
// re-creating the pending events with their original coordinates so the
// resumed schedule replays the uninterrupted one exactly.

func snapPacket(e *checkpoint.Encoder, pkt *packet.Packet) {
	e.BytesField(pkt.Data)
	e.Int(pkt.InPort)
	e.Bool(pkt.Gen)
	e.Int(pkt.Recirc)
}

func restorePacket(d *checkpoint.Decoder, pool *packet.Pool) *packet.Packet {
	data := d.BytesField()
	inPort := d.Int()
	gen := d.Bool()
	recirc := d.Int()
	if d.Err() != nil {
		return nil
	}
	pkt := pool.GetCopy(data, inPort)
	pkt.Gen = gen
	pkt.Recirc = recirc
	return pkt
}

func snapTicker(e *checkpoint.Encoder, st sim.TickerState) {
	e.Bool(st.Stopped)
	e.Bool(st.Pending)
	e.I64(int64(st.At))
	e.U64(st.Seq)
}

func restoreTicker(d *checkpoint.Decoder) sim.TickerState {
	var st sim.TickerState
	st.Stopped = d.Bool()
	st.Pending = d.Bool()
	st.At = sim.Time(d.I64())
	st.Seq = d.U64()
	return st
}

// snapCoord encodes a pending/at/seq triple — the same bytes the old
// Handle-based encoding produced, so snapshots stay format-compatible
// now that tx completions live on the conveyor instead of the heap.
func snapCoord(e *checkpoint.Encoder, pending bool, at sim.Time, seq uint64) {
	e.Bool(pending)
	if !pending {
		at, seq = 0, 0
	}
	e.I64(int64(at))
	e.U64(seq)
}

// Snapshot serializes the switch at a cycle boundary (nothing mid-slot:
// call it only from a scheduler event, never from inside runCycle).
func (s *Switch) Snapshot(e *checkpoint.Encoder) {
	// Cycle machinery.
	e.I64(int64(s.nextCycleAt))
	e.U64(s.cycleIdx)
	e.I64(int64(s.slotNow))
	e.U64(s.slotCycle)
	laneAt, laneSeq, laneArmed := s.cycleLane.ArmedAt()
	e.Bool(laneArmed)
	e.I64(int64(laneAt))
	e.U64(laneSeq)

	// Packet staging queues.
	for p := range s.rxq {
		live := s.rxq[p][s.rxHead[p]:]
		e.Int(len(live))
		for _, pkt := range live {
			snapPacket(e, pkt)
		}
	}
	e.Int(s.rxRR)
	e.Bool(s.lastRecirc)
	e.Int(len(s.recirc))
	for _, pkt := range s.recirc {
		snapPacket(e, pkt)
	}
	e.Int(len(s.genq))
	for _, pkt := range s.genq {
		snapPacket(e, pkt)
	}

	// Event FIFOs and the merger's arrival counter.
	for k := 0; k < events.NumKinds; k++ {
		s.evq[k].Snapshot(e)
	}
	e.U64(s.evSeq)

	// Program externs.
	e.Bool(s.prog != nil)
	if s.prog != nil {
		s.prog.Snapshot(e)
	}

	// Traffic manager (buffered packets ride along).
	s.tmgr.Snapshot(e)

	// Per-port link/tx state.
	for p := 0; p < s.cfg.Ports; p++ {
		e.Bool(s.linkUp[p])
		e.Bool(s.txBusy[p])
		e.Bool(s.txPkt[p] != nil)
		if s.txPkt[p] != nil {
			snapPacket(e, s.txPkt[p])
		}
		snapCoord(e, s.txDonePend[p], s.txDoneAt[p], s.txDoneSeq[p])
	}

	// In-flight pipeline conveyor entries, oldest first. The conveyor is
	// FIFO in (at, seq), which is exactly the event-seq order the old
	// heap-based encoding sorted into, so the section bytes are unchanged.
	live := s.pipeQ[s.pipeHead:]
	e.Int(len(live))
	for i := range live {
		en := &live[i]
		snapPacket(e, en.pkt)
		e.Int(en.port)
		e.Int(en.q)
		e.U64(en.rank)
		e.U64(en.flowHash)
		e.I64(int64(en.at))
		e.U64(en.seq)
	}

	// Hardware timers and generators.
	e.Int(len(s.timers))
	for _, t := range s.timers {
		e.Bool(t != nil)
		if t != nil {
			snapTicker(e, t.State())
		}
	}
	e.Int(len(s.gens))
	for _, g := range s.gens {
		e.U64(g.seq)
		snapTicker(e, g.ticker.State())
	}

	// Lifetime counters.
	st := &s.stats
	e.U64(st.RxPackets)
	e.U64(st.RxBytes)
	e.U64(st.TxPackets)
	e.U64(st.TxBytes)
	e.U64(st.RxDropped)
	e.U64(st.TxDroppedLinkDown)
	e.U64(st.PipelineDrops)
	e.U64(st.Cycles)
	e.U64(st.PacketSlots)
	e.U64(st.EmptySlots)
	e.U64(st.DrainSlots)
	for k := 0; k < events.NumKinds; k++ {
		e.U64(st.EventsMerged[k])
		e.U64(st.EventsDropped[k])
		e.U64(st.EventsCoalesced[k])
		e.U64(st.EventsShed[k])
	}
	e.U64(st.Recirculated)
	e.U64(st.Generated)

	// Telemetry sampler ticker.
	e.Bool(s.telSampler != nil)
	if s.telSampler != nil {
		snapTicker(e, s.telSampler.State())
	}

	// Pool last: its free-list depth and counters describe the state
	// after every live packet above was carved out of it.
	s.pool.Snapshot(e)
}

// Restore loads a snapshot into an identically constructed switch. It
// must run before the scheduler's clock is restored (so re-created
// events are never in the past) and before any traffic is offered.
func (s *Switch) Restore(d *checkpoint.Decoder) {
	s.nextCycleAt = sim.Time(d.I64())
	s.cycleIdx = d.U64()
	s.slotNow = sim.Time(d.I64())
	s.slotCycle = d.U64()
	laneArmed := d.Bool()
	laneAt := sim.Time(d.I64())
	laneSeq := d.U64()
	if d.Err() != nil {
		return
	}
	if laneArmed {
		s.cycleLane.RestoreArm(laneAt, laneSeq)
	}

	for p := range s.rxq {
		n := d.Int()
		if d.Err() != nil {
			return
		}
		s.rxq[p] = s.rxq[p][:0]
		s.rxHead[p] = 0
		for i := 0; i < n; i++ {
			pkt := restorePacket(d, s.pool)
			if pkt == nil {
				return
			}
			s.rxq[p] = append(s.rxq[p], pkt)
		}
	}
	s.rxRR = d.Int()
	s.lastRecirc = d.Bool()
	nr := d.Int()
	if d.Err() != nil {
		return
	}
	s.recirc = s.recirc[:0]
	for i := 0; i < nr; i++ {
		pkt := restorePacket(d, s.pool)
		if pkt == nil {
			return
		}
		s.recirc = append(s.recirc, pkt)
	}
	ng := d.Int()
	if d.Err() != nil {
		return
	}
	s.genq = s.genq[:0]
	for i := 0; i < ng; i++ {
		pkt := restorePacket(d, s.pool)
		if pkt == nil {
			return
		}
		s.genq = append(s.genq, pkt)
	}

	for k := 0; k < events.NumKinds; k++ {
		s.evq[k].Restore(d)
		if d.Err() != nil {
			return
		}
	}
	s.evSeq = d.U64()

	// Rebuild the derived O(1) work-check state from the restored queues.
	s.rxPending = 0
	for p := range s.rxq {
		s.rxPending += len(s.rxq[p]) - s.rxHead[p]
	}
	s.evMask = 0
	for k := 0; k < events.NumKinds; k++ {
		if s.evq[k].Len() > 0 {
			s.evMask |= 1 << uint(k)
		}
	}

	hadProg := d.Bool()
	if d.Err() != nil {
		return
	}
	if hadProg != (s.prog != nil) {
		d.Fail(fmt.Errorf("core: switch %s: snapshot program presence (%v) differs from rebuilt switch", s.cfg.Name, hadProg))
		return
	}
	if s.prog != nil {
		s.prog.Restore(d)
		if d.Err() != nil {
			return
		}
	}

	s.tmgr.Restore(d, s.pool)
	if d.Err() != nil {
		return
	}

	s.txPendCount = 0
	for p := 0; p < s.cfg.Ports; p++ {
		s.linkUp[p] = d.Bool()
		s.txBusy[p] = d.Bool()
		hasTx := d.Bool()
		if d.Err() != nil {
			return
		}
		if hasTx {
			s.txPkt[p] = restorePacket(d, s.pool)
		} else {
			s.txPkt[p] = nil
		}
		s.txDonePend[p] = d.Bool()
		if s.txDonePend[p] {
			s.txPendCount++
		}
		s.txDoneAt[p] = sim.Time(d.I64())
		s.txDoneSeq[p] = d.U64()
		if d.Err() != nil {
			return
		}
	}

	nj := d.Int()
	if d.Err() != nil {
		return
	}
	s.pipeQ = s.pipeQ[:0]
	s.pipeHead = 0
	for i := 0; i < nj; i++ {
		pkt := restorePacket(d, s.pool)
		if pkt == nil {
			return
		}
		var en pipeEntry
		en.pkt = pkt
		en.port = d.Int()
		en.q = d.Int()
		en.rank = d.U64()
		en.flowHash = d.U64()
		en.at = sim.Time(d.I64())
		en.seq = d.U64()
		if d.Err() != nil {
			return
		}
		s.pipeQ = append(s.pipeQ, en)
	}
	// Re-arm the aux lane at the restored conveyor's minimum: the entries
	// carry their original coordinates, so the resumed schedule fires them
	// in exactly the uninterrupted order.
	s.auxArm()

	nt := d.Int()
	if d.Err() != nil {
		return
	}
	if nt != len(s.timers) {
		d.Fail(fmt.Errorf("core: switch %s: snapshot has %d timers, rebuilt switch has %d", s.cfg.Name, nt, len(s.timers)))
		return
	}
	for i, t := range s.timers {
		had := d.Bool()
		if d.Err() != nil {
			return
		}
		if had != (t != nil) {
			d.Fail(fmt.Errorf("core: switch %s: timer %d armed=%v in snapshot, %v in rebuilt switch", s.cfg.Name, i, had, t != nil))
			return
		}
		if t != nil {
			t.RestoreState(restoreTicker(d))
		}
	}
	ngen := d.Int()
	if d.Err() != nil {
		return
	}
	if ngen != len(s.gens) {
		d.Fail(fmt.Errorf("core: switch %s: snapshot has %d generators, rebuilt switch has %d", s.cfg.Name, ngen, len(s.gens)))
		return
	}
	for _, g := range s.gens {
		g.seq = d.U64()
		g.ticker.RestoreState(restoreTicker(d))
	}

	st := &s.stats
	st.RxPackets = d.U64()
	st.RxBytes = d.U64()
	st.TxPackets = d.U64()
	st.TxBytes = d.U64()
	st.RxDropped = d.U64()
	st.TxDroppedLinkDown = d.U64()
	st.PipelineDrops = d.U64()
	st.Cycles = d.U64()
	st.PacketSlots = d.U64()
	st.EmptySlots = d.U64()
	st.DrainSlots = d.U64()
	for k := 0; k < events.NumKinds; k++ {
		st.EventsMerged[k] = d.U64()
		st.EventsDropped[k] = d.U64()
		st.EventsCoalesced[k] = d.U64()
		st.EventsShed[k] = d.U64()
	}
	st.Recirculated = d.U64()
	st.Generated = d.U64()

	hadSampler := d.Bool()
	if d.Err() != nil {
		return
	}
	if hadSampler != (s.telSampler != nil) {
		d.Fail(fmt.Errorf("core: switch %s: snapshot telemetry sampler presence (%v) differs from rebuilt switch", s.cfg.Name, hadSampler))
		return
	}
	if s.telSampler != nil {
		s.telSampler.RestoreState(restoreTicker(d))
	}

	s.pool.Restore(d)
}
