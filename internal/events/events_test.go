package events

import (
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	for k := IngressPacket; k < Kind(NumKinds); k++ {
		s := k.String()
		if s == "" || s[0] == 'K' { // "Kind(n)" means unnamed
			t.Errorf("kind %d has bad name %q", k, s)
		}
	}
	if NumKinds != 13 {
		t.Errorf("NumKinds = %d, want 13 (Table 1 has thirteen events)", NumKinds)
	}
}

func TestIsPacketEvent(t *testing.T) {
	packetKinds := map[Kind]bool{
		IngressPacket: true, EgressPacket: true, RecirculatedPacket: true,
	}
	for k := IngressPacket; k < Kind(NumKinds); k++ {
		if got := k.IsPacketEvent(); got != packetKinds[k] {
			t.Errorf("%v.IsPacketEvent() = %v", k, got)
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(BufferEnqueue, 4)
	for i := 0; i < 4; i++ {
		if !q.Push(Event{Seq: uint64(i)}) {
			t.Fatalf("push %d refused", i)
		}
	}
	if q.Push(Event{Seq: 99}) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Drops() != 1 || q.Pushed() != 4 {
		t.Errorf("drops=%d pushed=%d", q.Drops(), q.Pushed())
	}
	for i := 0; i < 4; i++ {
		e, ok := q.Pop()
		if !ok || e.Seq != uint64(i) {
			t.Fatalf("pop %d = %v ok=%v", i, e.Seq, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if q.HighWater() != 4 {
		t.Errorf("high water = %d", q.HighWater())
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue(BufferDequeue, 3)
	seq := uint64(0)
	next := uint64(0)
	for round := 0; round < 10; round++ {
		for q.Len() < 3 {
			q.Push(Event{Seq: seq})
			seq++
		}
		for q.Len() > 1 {
			e, _ := q.Pop()
			if e.Seq != next {
				t.Fatalf("round %d: got %d, want %d", round, e.Seq, next)
			}
			next++
		}
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(TimerExpiration, 2)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty")
	}
	q.Push(Event{Seq: 5})
	e, ok := q.Peek()
	if !ok || e.Seq != 5 {
		t.Fatalf("peek = %v", e)
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed the event")
	}
}

func TestQueuePropertyCount(t *testing.T) {
	// Property: pushes - drops == pops + remaining.
	f := func(ops []bool) bool {
		q := NewQueue(UserEvent, 5)
		var pops uint64
		for i, push := range ops {
			if push {
				q.Push(Event{Seq: uint64(i)})
			} else if _, ok := q.Pop(); ok {
				pops++
			}
		}
		return q.Pushed() == pops+uint64(q.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: BufferOverflow, Port: 2, Queue: 1, PktLen: 64}
	if s := e.String(); s == "" {
		t.Error("empty event string")
	}
}
