package events

import (
	"testing"
)

// TestCoalesceWrappedRegion exercises the coalesce scan across the ring
// wrap boundary: the pending same-port event lives in the wrapped run
// (indices below head), which the two-run scan must still find.
func TestCoalesceWrappedRegion(t *testing.T) {
	q := NewQueue(LinkStatusChange, 4)
	q.SetPolicy(CoalescePort)
	// Advance head past the midpoint: fill, drain 3, refill.
	for p := 0; p < 4; p++ {
		q.Offer(Event{Kind: LinkStatusChange, Port: p})
	}
	for i := 0; i < 3; i++ {
		q.Pop()
	}
	// head = 3; these occupy wrapped slots 0 and 1.
	q.Offer(Event{Kind: LinkStatusChange, Port: 10})
	q.Offer(Event{Kind: LinkStatusChange, Port: 11})
	if got := q.Offer(Event{Kind: LinkStatusChange, Port: 11, Up: true}); got != Coalesced {
		t.Fatalf("Offer into wrapped region = %v, want Coalesced", got)
	}
	// Drain: port 3 (pre-wrap survivor), 10, then the merged 11.
	want := []struct {
		port int
		up   bool
	}{{3, false}, {10, false}, {11, true}}
	for _, w := range want {
		e, ok := q.Pop()
		if !ok || e.Port != w.port || e.Up != w.up {
			t.Fatalf("Pop = %+v ok=%v, want port=%d up=%v", e, ok, w.port, w.up)
		}
	}
}

// TestCoalesceZeroAlloc pins the storm hot path at 0 allocs/op: a full
// CoalescePort queue absorbing same-port updates must not allocate.
func TestCoalesceZeroAlloc(t *testing.T) {
	q := NewQueue(LinkStatusChange, 8)
	q.SetPolicy(CoalescePort)
	for p := 0; p < 8; p++ {
		q.Offer(Event{Kind: LinkStatusChange, Port: p})
	}
	up := false
	allocs := testing.AllocsPerRun(1000, func() {
		up = !up
		for p := 0; p < 8; p++ {
			if q.Offer(Event{Kind: LinkStatusChange, Port: p, Up: up}) != Coalesced {
				t.Fatal("expected Coalesced")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("coalesce hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkQueueCoalesce measures the CoalescePort merge path under a
// link-flap storm pattern: the queue holds one pending event per port
// and every offer coalesces (the common case inside a storm, where the
// merger drains far slower than faults arrive).
func BenchmarkQueueCoalesce(b *testing.B) {
	const ports = 8
	q := NewQueue(LinkStatusChange, ports)
	q.SetPolicy(CoalescePort)
	for p := 0; p < ports; p++ {
		q.Offer(Event{Kind: LinkStatusChange, Port: p})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Offer(Event{Kind: LinkStatusChange, Port: i & (ports - 1), Up: i&1 == 0})
	}
}

// BenchmarkQueueOfferPop measures the plain store/drain cycle for
// comparison with the coalesce path.
func BenchmarkQueueOfferPop(b *testing.B) {
	q := NewQueue(BufferEnqueue, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Offer(Event{Kind: BufferEnqueue, Port: i & 63})
		q.Pop()
	}
}
