package events

import (
	"testing"
	"testing/quick"
)

// TestCoalescePortMergesSamePort pins the coalescing push: a pending
// LinkStatusChange for a port absorbs later changes to the same port
// (newest state wins, queue position kept), while distinct ports queue
// separately.
func TestCoalescePortMergesSamePort(t *testing.T) {
	q := NewQueue(LinkStatusChange, 8)
	q.SetPolicy(CoalescePort)

	if out := q.Offer(Event{Port: 1, Up: false, Seq: 1}); out != Stored {
		t.Fatalf("first offer = %v, want Stored", out)
	}
	if out := q.Offer(Event{Port: 2, Up: false, Seq: 2}); out != Stored {
		t.Fatalf("distinct port = %v, want Stored", out)
	}
	// Flap port 1 twice more: both coalesce into the pending entry.
	if out := q.Offer(Event{Port: 1, Up: true, Seq: 3}); out != Coalesced {
		t.Fatalf("same-port offer = %v, want Coalesced", out)
	}
	if out := q.Offer(Event{Port: 1, Up: false, Seq: 4}); out != Coalesced {
		t.Fatalf("same-port offer = %v, want Coalesced", out)
	}

	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	if q.Pushed() != 2 || q.Coalesced() != 2 || q.Drops() != 0 {
		t.Errorf("pushed=%d coalesced=%d drops=%d, want 2/2/0",
			q.Pushed(), q.Coalesced(), q.Drops())
	}
	// Queue order preserved: port 1 (with the newest state) pops first.
	e, _ := q.Pop()
	if e.Port != 1 || e.Up || e.Seq != 4 {
		t.Errorf("first pop = %+v, want port 1 newest state (down, seq 4)", e)
	}
	e, _ = q.Pop()
	if e.Port != 2 {
		t.Errorf("second pop port = %d, want 2", e.Port)
	}
}

// TestCoalescePortFullFallsBackToDrop pins the full-queue behaviour:
// with no same-port entry pending, CoalescePort drops the newest.
func TestCoalescePortFullFallsBackToDrop(t *testing.T) {
	q := NewQueue(LinkStatusChange, 2)
	q.SetPolicy(CoalescePort)
	q.Offer(Event{Port: 0})
	q.Offer(Event{Port: 1})
	if out := q.Offer(Event{Port: 2}); out != Dropped {
		t.Fatalf("offer to full queue = %v, want Dropped", out)
	}
	// But a same-port event still coalesces even at capacity.
	if out := q.Offer(Event{Port: 1, Up: true}); out != Coalesced {
		t.Fatalf("same-port offer to full queue = %v, want Coalesced", out)
	}
	if q.Drops() != 1 || q.Coalesced() != 1 || q.Pushed() != 2 {
		t.Errorf("drops=%d coalesced=%d pushed=%d, want 1/1/2",
			q.Drops(), q.Coalesced(), q.Pushed())
	}
}

// TestDropOldestShedsHead pins priority shedding: a full DropOldest
// queue evicts its head to admit fresh events, counting each eviction.
func TestDropOldestShedsHead(t *testing.T) {
	q := NewQueue(BufferOverflow, 3)
	q.SetPolicy(DropOldest)
	for i := 0; i < 5; i++ {
		out := q.Offer(Event{Seq: uint64(i)})
		want := Stored
		if i >= 3 {
			want = StoredShed
		}
		if out != want {
			t.Fatalf("offer %d = %v, want %v", i, out, want)
		}
	}
	if q.Len() != 3 || q.Shed() != 2 || q.Drops() != 0 || q.Pushed() != 5 {
		t.Fatalf("len=%d shed=%d drops=%d pushed=%d, want 3/2/0/5",
			q.Len(), q.Shed(), q.Drops(), q.Pushed())
	}
	// The survivors are the newest three, in order.
	for want := uint64(2); want <= 4; want++ {
		e, ok := q.Pop()
		if !ok || e.Seq != want {
			t.Fatalf("pop = %v ok=%v, want seq %d", e.Seq, ok, want)
		}
	}
}

// TestOfferAccountingIdentity is the conservation property faults.Audit
// relies on: offered events partition exactly into pushed + coalesced +
// drops, and pushed events partition into popped + shed + queued, under
// every policy and an arbitrary push/pop interleaving.
func TestOfferAccountingIdentity(t *testing.T) {
	for _, pol := range []OverflowPolicy{DropNewest, DropOldest, CoalescePort} {
		f := func(ops []byte) bool {
			q := NewQueue(LinkStatusChange, 4)
			q.SetPolicy(pol)
			var offered, popped uint64
			for i, op := range ops {
				if op%3 == 0 {
					if _, ok := q.Pop(); ok {
						popped++
					}
				} else {
					offered++
					q.Offer(Event{Port: int(op % 5), Seq: uint64(i)})
				}
			}
			return offered == q.Pushed()+q.Coalesced()+q.Drops() &&
				q.Pushed() == popped+q.Shed()+uint64(q.Len())
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("policy %d: %v", pol, err)
		}
	}
}

// TestHighWaterTracksPeakDepth pins HighWater across a fill/drain cycle.
func TestHighWaterTracksPeakDepth(t *testing.T) {
	q := NewQueue(LinkStatusChange, 8)
	for i := 0; i < 5; i++ {
		q.Push(Event{Port: i})
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	q.Push(Event{Port: 9})
	if q.HighWater() != 5 {
		t.Errorf("high water = %d, want 5", q.HighWater())
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2", q.Len())
	}
}
