package events

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// snapEvent serializes one event record.
func snapEvent(e *checkpoint.Encoder, ev Event) {
	e.U8(uint8(ev.Kind))
	e.I64(int64(ev.When))
	e.U64(ev.Seq)
	e.Int(ev.Port)
	e.Int(ev.Queue)
	e.Int(ev.PktLen)
	e.U64(ev.FlowHash)
	e.Int(ev.TimerID)
	e.Bool(ev.Up)
	e.U64(ev.Data)
}

// restoreEvent reads one event record.
func restoreEvent(d *checkpoint.Decoder) Event {
	var ev Event
	ev.Kind = Kind(d.U8())
	ev.When = sim.Time(d.I64())
	ev.Seq = d.U64()
	ev.Port = d.Int()
	ev.Queue = d.Int()
	ev.PktLen = d.Int()
	ev.FlowHash = d.U64()
	ev.TimerID = d.Int()
	ev.Up = d.Bool()
	ev.Data = d.U64()
	return ev
}

// Snapshot serializes the queue: the occupied ring region in FIFO order
// plus the overflow counters. Capacity and policy come from construction
// and are checked on restore.
func (q *Queue) Snapshot(e *checkpoint.Encoder) {
	e.U32(uint32(len(q.buf)))
	e.U8(uint8(q.policy))
	e.U32(uint32(q.sz))
	for i := 0; i < q.sz; i++ {
		snapEvent(e, q.buf[(q.head+i)%len(q.buf)])
	}
	e.U64(q.drops)
	e.U64(q.pushed)
	e.U64(q.coalesced)
	e.U64(q.shed)
	e.Int(q.hwm)
}

// Restore loads a snapshot into an identically configured queue. Queued
// events land at head 0; FIFO order is preserved.
func (q *Queue) Restore(d *checkpoint.Decoder) {
	cap := int(d.U32())
	pol := OverflowPolicy(d.U8())
	if d.Err() != nil {
		return
	}
	if cap != len(q.buf) || pol != q.policy {
		d.Fail(fmt.Errorf("events: queue %v: snapshot cap=%d policy=%d, queue cap=%d policy=%d",
			q.kind, cap, pol, len(q.buf), q.policy))
		return
	}
	sz := int(d.U32())
	if d.Err() != nil {
		return
	}
	if sz > len(q.buf) {
		d.Fail(fmt.Errorf("events: queue %v: snapshot holds %d events, capacity %d", q.kind, sz, len(q.buf)))
		return
	}
	q.head = 0
	q.sz = sz
	for i := 0; i < sz; i++ {
		q.buf[i] = restoreEvent(d)
	}
	q.drops = d.U64()
	q.pushed = d.U64()
	q.coalesced = d.U64()
	q.shed = d.U64()
	q.hwm = d.Int()
}
