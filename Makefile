GO ?= go

.PHONY: check vet build test race bench evbench

# The gate everything must pass: static checks, a full build, the test
# suite, and the parallel experiment harness under the race detector.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench -run TestParallel

# Hot-path micro-benchmarks (scheduler + switch cycle).
bench:
	$(GO) test -bench 'BenchmarkScheduler|BenchmarkSwitch' -benchmem -run xxx ./internal/sim ./internal/core

# Regenerate every table and figure.
evbench:
	$(GO) run ./cmd/evbench
