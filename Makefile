GO ?= go

.PHONY: check vet lint build test race fuzz bench evbench bench-json bench-smoke bench-diff burst-smoke check-backends telemetry-smoke crash-smoke obs-smoke scale-smoke

# The gate everything must pass: static checks, a full build, the test
# suite, the concurrency-sensitive packages (parallel experiment
# harness, partitioned engine, fault injection) under the race detector,
# an end-to-end telemetry export check, the µP4 backend differential
# check, the burst-datapath differential check, the crash-injection
# checkpoint/restore harness, the observability-plane read-only check,
# the fat-tree partitioned-digest smoke, and a perf regression diff
# against the committed baseline.
check: lint build test race telemetry-smoke check-backends burst-smoke crash-smoke obs-smoke scale-smoke bench-diff

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (the CI
# image may not ship it — the gate degrades to vet-only with a notice
# rather than failing on a missing tool).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, ran go vet only"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full scale sweep (TestScale*) is excluded here: its k=8 fat tree
# is minutes under the race detector on one core. scale-smoke runs the
# reduced fat tree race-checked instead.
race:
	$(GO) test -race ./internal/bench -run 'TestParallel|TestResilience|TestDomain|TestTelemetry|TestFastForward|TestUP4|TestTrialPanic|TestJournal|TestBurst|TestObs'
	$(GO) test -race ./internal/sim -run 'TestPartition|TestAtWire|TestRunBefore|TestAdvanceTo|TestBatched|TestSlimState'
	$(GO) test -race ./internal/netsim -run 'TestPartitioned|TestScheduleLinkChange|TestCrossDomain|TestBurst'
	$(GO) test -race ./internal/core -run 'TestBurst|TestSwitchBurst'
	$(GO) test -race ./internal/faults
	$(GO) test -race ./internal/checkpoint
	$(GO) test -race ./internal/telemetry ./internal/telemetry/self ./internal/obs

# Coverage-guided fuzzing: the fault-schedule parser/validator and the
# µP4 compiled-vs-interpreter differential target. Not part of `check`
# (open-ended); run before touching the DSL or the compilation backend.
fuzz:
	$(GO) test -fuzz FuzzParseSchedule -fuzztime 10s ./internal/faults
	$(GO) test -fuzz FuzzCompiledVsInterp -fuzztime 10s ./internal/p4

# Hot-path micro-benchmarks (scheduler + switch cycle + event queue).
bench:
	$(GO) test -bench 'BenchmarkScheduler|BenchmarkSwitch|BenchmarkQueue' -benchmem -run xxx ./internal/sim ./internal/core ./internal/events

# Regenerate every table and figure.
evbench:
	$(GO) run ./cmd/evbench

# Machine-readable perf reports: BENCH_<experiment>.json per experiment
# (wall time, allocations, cycles/s where measured).
bench-json:
	$(GO) run ./cmd/evbench -benchjson .

# Compare BENCH_<id>.json report pairs (override OLD/NEW, OLD2/NEW2):
#   make bench-diff OLD=BENCH_scale.before.json NEW=BENCH_scale.json
# Prints malloc / alloc-bytes / wall / cycles-per-sec deltas (aggregate
# and per perf row, including the burst-off oracle rows) and fails if
# the deterministic table or telemetry digest changed.
OLD ?= BENCH_scale.before.json
NEW ?= BENCH_scale.json
OLD2 ?= BENCH_up4.before.json
NEW2 ?= BENCH_up4.json
bench-diff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW) $(OLD2) $(NEW2)

# Quick cross-check that the partitioned engine changes nothing: every
# experiment's table diffed between -domains 1 and -domains 2.
bench-smoke:
	$(GO) run ./cmd/evbench -domains 1 > /tmp/evbench.d1.txt
	$(GO) run ./cmd/evbench -domains 2 > /tmp/evbench.d2.txt
	diff /tmp/evbench.d1.txt /tmp/evbench.d2.txt && echo "bench-smoke: -domains 1 == -domains 2"

# Burst datapath differential check at the experiment level: every table
# and figure regenerated with the default burst engine must be
# byte-identical to the per-packet oracle (-burst 0).
burst-smoke:
	$(GO) run ./cmd/evbench > /tmp/evbench.burst.txt
	$(GO) run ./cmd/evbench -burst 0 > /tmp/evbench.noburst.txt
	diff /tmp/evbench.burst.txt /tmp/evbench.noburst.txt && echo "burst-smoke: burst == -burst 0"

# µP4 backend differential check at the experiment level: every table
# and figure regenerated with compiled closures must be byte-identical
# to the interpreter oracle (-interp).
check-backends:
	$(GO) run ./cmd/evbench > /tmp/evbench.compiled.txt
	$(GO) run ./cmd/evbench -interp > /tmp/evbench.interp.txt
	diff /tmp/evbench.compiled.txt /tmp/evbench.interp.txt && echo "check-backends: compiled == interp"

# Crash-injection differential harness: SIGKILL the real evsim binary
# mid-run at a randomized instant, resume from the surviving checkpoint,
# and require byte-identical statistics (TestCrashSIGKILLResume), plus
# the in-process resume and exit-code pins in the same package.
crash-smoke:
	$(GO) test ./cmd/evsim -run 'TestCrashSIGKILLResume|TestResumeByteIdentical|TestExitCodes' -count 1
	@echo "crash-smoke: SIGKILL + resume is byte-identical"

# Partitioned-scaling smoke: a reduced k=4 fat tree under the race
# detector, digest-diffed between -domains 1 and -domains 4 (adaptive
# and classic fixed-width windows). The fast version of the full scale
# sweep's byte-identity claim.
scale-smoke:
	$(GO) test -race ./internal/bench -run TestFatTreeScaleSmoke -count 1
	@echo "scale-smoke: fat-tree digests identical at -domains 1 and 4"

# End-to-end telemetry check: export trace + metrics from an
# instrumented experiment, schema-validate both with tracecheck, and
# require byte-identical files at -domains 1 and -domains 2.
telemetry-smoke:
	$(GO) run ./cmd/evbench -exp hula -domains 1 -trace /tmp/evtel.d1.jsonl -metrics /tmp/evtel.d1.json > /dev/null
	$(GO) run ./cmd/evbench -exp hula -domains 2 -trace /tmp/evtel.d2.jsonl -metrics /tmp/evtel.d2.json > /dev/null
	$(GO) run ./cmd/tracecheck -trace /tmp/evtel.d1.jsonl -metrics /tmp/evtel.d1.json
	cmp /tmp/evtel.d1.jsonl /tmp/evtel.d2.jsonl
	cmp /tmp/evtel.d1.json /tmp/evtel.d2.json
	@echo "telemetry-smoke: exports valid and -domains 1 == -domains 2"

# Observability-plane read-only check: the scale campaign with the HTTP
# introspection endpoint + streaming telemetry enabled must render a
# byte-identical table to a plain run at -parallel 8 -domains 2, with a
# live mid-run scrape seeing non-zero barrier-stall and burst-occupancy
# self-metrics (TestObsSmoke), plus the harness-level export-identity
# and streamed-file checks.
obs-smoke:
	$(GO) test ./cmd/evbench -run TestObsSmoke -count 1
	$(GO) test ./internal/bench -run TestObsStreamingIdentical -count 1
	$(GO) test ./cmd/tracecheck -count 1
	@echo "obs-smoke: observability plane is read-only"
