GO ?= go

.PHONY: check vet build test race fuzz bench evbench

# The gate everything must pass: static checks, a full build, the test
# suite, and the concurrency-sensitive packages (parallel experiment
# harness, fault injection) under the race detector.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench -run 'TestParallel|TestResilience'
	$(GO) test -race ./internal/faults

# Coverage-guided fuzzing of the fault-schedule parser/validator.
# Not part of `check` (open-ended); run it before touching the DSL.
fuzz:
	$(GO) test -fuzz FuzzParseSchedule -fuzztime 10s ./internal/faults

# Hot-path micro-benchmarks (scheduler + switch cycle).
bench:
	$(GO) test -bench 'BenchmarkScheduler|BenchmarkSwitch' -benchmem -run xxx ./internal/sim ./internal/core

# Regenerate every table and figure.
evbench:
	$(GO) run ./cmd/evbench
