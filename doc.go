// Package repro is a complete Go reproduction of "Event-Driven Packet
// Processing" (Ibanez, Antichi, Brebner, McKeown — HotNets 2019).
//
// The module's only importable surface lives under internal/ (this is a
// research artifact, not a library to depend on); the entry points are:
//
//   - cmd/evbench — regenerate every table and figure of the paper
//   - cmd/evsim — run ad-hoc switch scenarios, including µP4 programs
//   - examples/ — eight runnable walkthroughs of the public API
//   - bench_test.go (this package) — the same experiments as benchmarks
//
// Start with README.md for orientation, DESIGN.md for the system
// inventory and experiment index, EXPERIMENTS.md for paper-vs-measured
// results, and internal/p4/LANGUAGE.md for the µP4 language.
package repro
