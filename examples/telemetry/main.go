// In-band telemetry example (paper §3 Network Monitoring): a chain of
// three INT transit switches pushes per-hop records (switch id, queue
// occupancy, latency estimate, timestamp) onto instrumented packets.
// The middle switch is congested by cross traffic; the receiving host
// reconstructs exactly where along the path the queueing happened.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	var switches []*core.Switch
	for i := 0; i < 3; i++ {
		_, prog := apps.NewINTTransit(apps.INTTransitConfig{
			SwitchID: uint32(i + 1), EgressPort: 1,
		})
		sw := core.New(core.Config{Name: fmt.Sprintf("s%d", i+1), QueueCapBytes: 1 << 20},
			core.EventDriven(), sched)
		if err := sw.Load(prog); err != nil {
			panic(err)
		}
		net.AddSwitch(sw)
		switches = append(switches, sw)
	}
	src := net.NewHost("src", packet.IP4(10, 0, 0, 1))
	sink := net.NewHost("sink", packet.IP4(10, 9, 0, 1))
	net.Attach(src, switches[0], 0, 0)
	net.Connect(switches[0], 1, switches[1], 0, sim.Microsecond)
	net.Connect(switches[1], 1, switches[2], 0, sim.Microsecond)
	net.Attach(sink, switches[2], 1, 0)
	crossA := net.NewHost("crossA", packet.IP4(10, 0, 0, 2))
	crossB := net.NewHost("crossB", packet.IP4(10, 0, 0, 3))
	net.Attach(crossA, switches[1], 2, 0)
	net.Attach(crossB, switches[1], 3, 0)

	// Per-hop peak statistics at the sink.
	peaks := map[uint32]uint32{}
	var received int
	sink.OnRecv = func(data []byte) {
		recs, ok := packet.INTRecords(data)
		if !ok {
			return
		}
		received++
		for _, r := range recs {
			if r.QueueBytes > peaks[r.SwitchID] {
				peaks[r.SwitchID] = r.QueueBytes
			}
		}
	}

	// Instrumented probes every 200us; 12G of cross traffic into the
	// middle switch's 10G egress from 2ms to 8ms.
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1),
		SrcPort: 7000, DstPort: packet.INTPort, Proto: packet.ProtoUDP}
	for i := 0; i < 60; i++ {
		at := sim.Time(i) * 200 * sim.Microsecond
		sched.At(at, func() {
			data := packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 200})
			inst, err := packet.INTInstrument(data)
			if err != nil {
				panic(err)
			}
			src.Send(inst)
		})
	}
	for i, h := range []*netsim.Host{crossA, crossB} {
		g := workload.NewGen(sched, sim.NewRNG(uint64(i+1)), func(d []byte) { h.Send(d) })
		i := i
		sched.At(2*sim.Millisecond, func() {
			g.StartCBR(workload.CBRConfig{
				Flow: packet.Flow{Src: packet.IP4(10, 0, 0, byte(9+i)), Dst: packet.IP4(10, 9, 0, 1),
					SrcPort: uint16(100 + i), DstPort: 80, Proto: packet.ProtoUDP},
				Size: workload.FixedSize(1500), Rate: 6 * sim.Gbps, Until: 8 * sim.Millisecond,
			})
		})
	}

	sched.Run(15 * sim.Millisecond)

	fmt.Printf("sink received %d instrumented packets, each carrying 3 hop records\n", received)
	for hop := uint32(1); hop <= 3; hop++ {
		fmt.Printf("  switch %d peak queue along the path: %6d bytes\n", hop, peaks[hop])
	}
	fmt.Println("the congested hop is visible directly in the packets — no polling, no control plane")
}
