// AQM example (paper §3 Traffic Management, §5 "Computing Congestion
// Signals"): a FRED-like fair queue manager built entirely from
// enqueue/dequeue events. A 12 Gb/s hog and a 200 Mb/s mouse share one
// 10 Gb/s egress; the AQM computes total occupancy, per-flow occupancy
// and the active-flow count from buffer events, dropping only the flow
// exceeding its fair share. A timer event samples occupancy for a
// monitoring time series — the student project's report stream.
//
//	go run ./examples/aqm
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{Name: "aqm", QueueCapBytes: 1 << 20}, core.EventDriven(), sched)

	fred, prog := apps.NewFRED(apps.FREDConfig{
		Slots:      256,
		MinQBytes:  3000,
		TotalLimit: 30000,
		EgressPort: 1,
		ReportPort: -1,
	})
	sw.MustLoad(prog)
	if err := fred.Arm(sw, sim.Millisecond); err != nil {
		panic(err)
	}

	hog := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 80, Proto: packet.ProtoUDP}
	mouse := packet.Flow{Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 2, DstPort: 80, Proto: packet.ProtoUDP}

	rng := sim.NewRNG(3)
	ghog := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	ghog.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500),
		Rate: 12 * sim.Gbps, Until: 40 * sim.Millisecond})
	gmouse := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
	gmouse.StartCBR(workload.CBRConfig{Flow: mouse, Size: workload.FixedSize(300),
		Rate: 200 * sim.Mbps, Until: 40 * sim.Millisecond})

	mouseSlot := uint32(mouse.Hash() % 256)
	var mouseTx, hogTx uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if f, ok := packet.FlowOf(pkt.Data); ok {
			if uint32(f.Hash()%256) == mouseSlot {
				mouseTx++
			} else {
				hogTx++
			}
		}
	}

	sched.Run(45 * sim.Millisecond)

	fmt.Printf("hog:   offered=%-6d delivered=%-6d dropped-by-AQM=%d\n",
		ghog.SentPackets, hogTx, fred.Dropped)
	fmt.Printf("mouse: offered=%-6d delivered=%-6d (%.1f%%)\n",
		gmouse.SentPackets, mouseTx, 100*float64(mouseTx)/float64(gmouse.SentPackets))
	fmt.Printf("congestion signals at end: total occupancy=%dB active flows=%d\n",
		fred.TotalOccupancy(), fred.ActiveFlows())
	fmt.Printf("occupancy time series (from timer events): %d samples\n", len(fred.Samples))
	for i := 0; i < len(fred.Samples) && i < 8; i++ {
		s := fred.Samples[i]
		fmt.Printf("  t=%-6v occupancy=%dB\n", s.At, s.Value)
	}
}
