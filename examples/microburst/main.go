// Microburst comparison example (paper §2): the same detection task on
// the event-driven architecture (per-flow occupancy from enqueue/dequeue
// events — exact, one register) and on a baseline-PISA Snappy-style
// approximation (rotating sketch snapshots, 4x the state, false
// positives). This is the Go-API version of the quickstart's µP4 program,
// side by side with its baseline.
//
//	go run ./examples/microburst
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

const threshold = 15000

func main() {
	fmt.Println("running identical traffic through both detectors...")
	evDet, evState := run("event")
	snDet, snState := run("snappy")

	fmt.Printf("\n%-22s %-12s %-12s\n", "design", "state bytes", "detections")
	fmt.Printf("%-22s %-12d %-12d\n", "event-driven (§2)", evState, evDet)
	fmt.Printf("%-22s %-12d %-12d\n", "snappy baseline", snState, snDet)
	fmt.Printf("\nstate ratio: %.1fx — the paper's 'at least four-fold' reduction\n",
		float64(snState)/float64(evState))
}

// run pushes background traffic plus one incast microburst through the
// chosen detector and returns (unique flows flagged, state bytes).
func run(mode string) (int, int) {
	sched := sim.NewScheduler()
	arch := core.EventDriven()
	if mode == "snappy" {
		arch = core.Baseline()
	}
	sw := core.New(core.Config{QueueCapBytes: 1 << 20}, arch, sched)

	var detections *[]apps.Detection
	var state int
	if mode == "event" {
		mb, prog := apps.NewMicroburst(apps.MicroburstConfig{
			Slots: 1024, ThresholdBytes: threshold, EgressPort: 1,
		})
		sw.MustLoad(prog)
		detections, state = &mb.Detections, mb.StateBytes()
	} else {
		sn, prog := apps.NewSnappy(apps.SnappyConfig{
			Snapshots: 4, Rows: 3, Width: 1024, WindowPkts: 256,
			ThresholdBytes: threshold, EgressPort: 1,
		})
		sw.MustLoad(prog)
		detections, state = &sn.Detections, sn.StateBytes()
	}

	// Background flows.
	rng := sim.NewRNG(42)
	flows := workload.NewFlowSet(100, 1.1, packet.IP4(10, 0, 0, 0))
	bg := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	bg.StartPoisson(workload.PoissonConfig{Flows: flows, MeanGap: 3 * sim.Microsecond, Until: 10 * sim.Millisecond})

	// One incast microburst at t=5ms.
	culprit := packet.Flow{Src: packet.IP4(172, 16, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 7000, DstPort: 80, Proto: packet.ProtoUDP}
	for i := 0; i < 20; i++ {
		at := 5*sim.Millisecond + sim.Time(i)*1230*sim.Nanosecond
		sched.At(at, func() {
			sw.Inject(2, packet.BuildFrame(packet.FrameSpec{Flow: culprit, TotalLen: 1500}))
			sw.Inject(3, packet.BuildFrame(packet.FrameSpec{Flow: culprit, TotalLen: 1500}))
		})
	}
	for i := 0; i < 10; i++ {
		at := 5*sim.Millisecond + 26*sim.Microsecond + sim.Time(i)*2*sim.Microsecond
		sched.At(at, func() {
			sw.Inject(2, packet.BuildFrame(packet.FrameSpec{Flow: culprit, TotalLen: 1500}))
		})
	}
	sched.Run(15 * sim.Millisecond)

	unique := map[uint32]bool{}
	for _, det := range *detections {
		unique[det.FlowSlot] = true
	}
	culpritSlot := uint32(culprit.Hash() % 1024)
	fmt.Printf("  %-7s: %d unique flow(s) flagged; culprit flagged: %v\n",
		mode, len(unique), unique[culpritSlot])
	return len(unique), state
}
