// Router example: a µP4 LPM router (table + actions + counter extern)
// with routes installed through the modeled control plane — showing the
// ordinary P4 workflow (compile, load, install entries, forward) on the
// event-driven target, plus a timer-driven byte-counter report that a
// baseline target could not express.
//
//	go run ./examples/router
package main

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

const routerP4 = `
counter(16) port_bytes;

action set_egress(port) {
    forward(port);
}

action drop_pkt() {
    drop();
}

table ipv4_lpm {
    key = { hdr.ip.dst : lpm; }
    actions = { set_egress; drop_pkt; }
    default_action = drop_pkt();
}

control Ingress {
    apply {
        if (hdr.ip.valid == 1) {
            ipv4_lpm.apply();
            port_bytes.count(std.ingress_port, std.pkt_len);
        } else {
            drop();
        }
    }
}

control Timer {
    apply { no_op(); }   // hook for periodic stats export
}
`

func main() {
	inst := p4.MustCompile(routerP4).Instantiate("router", p4.Options{})

	sched := sim.NewScheduler()
	sw := core.New(core.Config{Name: "rtr"}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		panic(err)
	}

	// Install routes through the control-plane model: each install costs
	// a message and takes effect after the channel latency.
	agent := controlplane.New(sched, sim.NewRNG(1))
	routes := []struct {
		prefix packet.IP
		length int
		port   uint64
	}{
		{packet.IP4(10, 0, 0, 0), 8, 1},
		{packet.IP4(10, 1, 0, 0), 16, 2},
		{packet.IP4(192, 168, 0, 0), 16, 3},
	}
	tbl := inst.Table("ipv4_lpm")
	for _, r := range routes {
		r := r
		agent.InstallEntry(tbl, &pisa.Entry{
			Values: []uint64{uint64(r.prefix)},
			Masks:  []uint64{pisa.PrefixMask(r.length, 32)},
			Action: func(ctx *pisa.Context, params []uint64) { ctx.EgressPort = int(params[0]) },
			Params: []uint64{r.port},
		})
	}

	var perPort [4]int
	sw.OnTransmit = func(port int, _ *packet.Packet) { perPort[port]++ }

	// Traffic arrives before and after the routes land (~100-500us).
	dsts := []packet.IP{
		packet.IP4(10, 5, 0, 1),    // /8  -> port 1
		packet.IP4(10, 1, 2, 3),    // /16 -> port 2
		packet.IP4(192, 168, 9, 9), // /16 -> port 3
		packet.IP4(8, 8, 8, 8),     // miss -> drop
	}
	for i := 0; i < 40; i++ {
		i := i
		at := sim.Time(i) * 50 * sim.Microsecond
		sched.At(at, func() {
			fl := packet.Flow{
				Src: packet.IP4(172, 16, 0, 1), Dst: dsts[i%len(dsts)],
				SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.ProtoUDP,
			}
			sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 300}))
		})
	}
	sched.Run(5 * sim.Millisecond)

	fmt.Printf("control plane: %d messages, %d installs applied\n", agent.Messages, agent.Completed)
	for port, n := range perPort {
		if n > 0 {
			fmt.Printf("port %d forwarded %d packets\n", port, n)
		}
	}
	fmt.Printf("dropped in pipeline (miss or pre-install): %d\n", sw.Stats().PipelineDrops)
	pk, by := inst.Program().Counter("port_bytes").Value(0)
	fmt.Printf("ingress port 0 counter: %d packets, %d bytes\n", pk, by)
}
