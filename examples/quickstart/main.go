// Quickstart: compile the paper's §2 microburst program written in µP4,
// load it on a simulated SUME Event Switch, push a microburst through,
// and watch the data plane flag the culprit flow — all in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// The paper's microburst.p4, in µP4 syntax. Enqueue and Dequeue controls
// maintain per-flow buffer occupancy through shared_register aggregation
// (Figure 3); the Ingress control reads it before the packet is buffered
// and raises a user event when a flow exceeds the threshold.
const microburstP4 = `
const NUM_REGS = 1024;
const FLOW_THRESH = 15000;

shared_register<bit<32>>(NUM_REGS) bufSize_reg;

control Ingress {
    bit<32> bufSize;
    apply {
        bufSize_reg.read(ev.flow_id % NUM_REGS, bufSize);
        if (bufSize > FLOW_THRESH) {
            raise(ev.flow_id);   // microburst culprit!
        }
        forward(1);
    }
}

control Enqueue {
    apply { bufSize_reg.add(ev.flow_id % NUM_REGS, ev.pkt_len); }
}

control Dequeue {
    apply { bufSize_reg.add(ev.flow_id % NUM_REGS, 0 - ev.pkt_len); }
}

control UserEvent {
    apply { no_op(); }
}
`

func main() {
	compiled, err := p4.Compile(microburstP4)
	if err != nil {
		panic(err)
	}
	inst := compiled.Instantiate("microburst", p4.Options{})

	sched := sim.NewScheduler()
	sw := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		panic(err)
	}

	// Observe the user events the program raises.
	culprits := map[uint64]int{}
	inst.Program().HandleFunc(events.UserEvent, func(ctx *pisa.Context) {
		culprits[ctx.Ev.Data]++
	})

	// A microburst: 2x20 1500B frames from one flow arrive on two ports
	// at once (incast), overflowing the threshold while a few trailing
	// packets observe the deep queue.
	burst := packet.Flow{
		Src: packet.IP4(172, 16, 0, 9), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 7777, DstPort: 80, Proto: packet.ProtoUDP,
	}
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 1230 * sim.Nanosecond
		sched.At(at, func() {
			sw.Inject(2, packet.BuildFrame(packet.FrameSpec{Flow: burst, TotalLen: 1500}))
			sw.Inject(3, packet.BuildFrame(packet.FrameSpec{Flow: burst, TotalLen: 1500}))
		})
	}
	for i := 0; i < 8; i++ {
		at := 26*sim.Microsecond + sim.Time(i)*2*sim.Microsecond
		sched.At(at, func() {
			sw.Inject(2, packet.BuildFrame(packet.FrameSpec{Flow: burst, TotalLen: 1500}))
		})
	}

	sched.Run(5 * sim.Millisecond)

	fmt.Printf("switch %s ran %d pipeline cycles, forwarded %d packets\n",
		sw.Name(), sw.Stats().Cycles, sw.Stats().TxPackets)
	if len(culprits) == 0 {
		fmt.Println("no culprit detected (unexpected)")
		return
	}
	for flowID, n := range culprits {
		fmt.Printf("microburst culprit: flow %#x flagged %d times while its queue exceeded %d bytes\n",
			flowID, n, 15000)
	}
	reg := inst.Register("bufSize_reg")
	fmt.Printf("occupancy register drained back to zero: %v\n", reg.True(uint32(burst.Hash()%1024)) == 0)
}
