// Liveness monitoring example (paper §5): a switch's data plane
// periodically transmits echo requests on each port from timer events,
// its neighbor answers entirely in its own data plane, and when the link
// dies the monitor notifies a collector host with a Report frame — the
// control plane never runs.
//
//	go run ./examples/liveness
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

func main() {
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	mon := core.New(core.Config{Name: "monitor"}, core.EventDriven(), sched)
	nbr := core.New(core.Config{Name: "neighbor"}, core.EventDriven(), sched)

	lv, prog := apps.NewLiveness(apps.LivenessConfig{
		SwitchID:    1,
		ProbePorts:  []int{1},
		Period:      sim.Millisecond,
		DeadAfter:   3,
		MonitorPort: 0,
	})
	mon.MustLoad(prog)
	nbr.MustLoad(apps.EchoResponder(2, 0))

	net.AddSwitch(mon)
	net.AddSwitch(nbr)
	link := net.Connect(mon, 1, nbr, 1, 10*sim.Microsecond)

	collector := net.NewHost("collector", packet.IP4(9, 9, 9, 9))
	net.Attach(collector, mon, 0, 0)
	collector.OnRecv = func(data []byte) {
		var p packet.Parser
		var dec []packet.LayerType
		if p.Decode(data, &dec) == nil && len(dec) == 2 && dec[1] == packet.LayerReport {
			fmt.Printf("t=%-7v collector: report kind=%d switch=%d port=%d\n",
				sched.Now(), p.Report.Kind, p.Report.Switch, p.Report.V0)
		}
	}

	if err := lv.Arm(mon); err != nil {
		panic(err)
	}

	failAt := 20 * sim.Millisecond
	repairAt := 45 * sim.Millisecond
	sched.At(failAt, func() {
		fmt.Printf("t=%-7v link to neighbor FAILS\n", sched.Now())
		net.Fail(link)
	})
	sched.At(repairAt, func() {
		fmt.Printf("t=%-7v link REPAIRED\n", sched.Now())
		net.Repair(link)
	})
	sched.Every(10*sim.Millisecond, func() {
		fmt.Printf("t=%-7v monitor's view: neighbor alive=%v (echo replies so far: %d)\n",
			sched.Now(), lv.Alive(1), lv.RepliesSeen)
	})

	sched.Run(70 * sim.Millisecond)

	fmt.Println()
	for _, n := range lv.Notifications {
		fmt.Printf("neighbor-down notification at %v (%v after failure)\n", n.At, n.At-failAt)
	}
	for _, r := range lv.Recoveries {
		fmt.Printf("neighbor recovered at %v (%v after repair)\n", r.At, r.At-repairAt)
	}
}
