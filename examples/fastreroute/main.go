// Fast re-route example (paper §3 Network Management, §5 student
// project): a three-switch triangle where s1 normally reaches the sink
// through s2. When the s1-s2 link fails, the LinkStatusChange event lets
// s1's data plane fail over to the backup path through s3 immediately —
// no control-plane involvement — and fail back on repair.
//
//	go run ./examples/fastreroute
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	flow := packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 5000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	dstPrefix := int(uint32(flow.Dst) >> 16)

	s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)
	frr, prog := apps.NewFRR(apps.FRRConfig{
		Primary: map[int]int{dstPrefix: 1}, // via s2
		Backup:  map[int]int{dstPrefix: 2}, // via s3
	})
	s1.MustLoad(prog)

	fwd := func(port int) *pisa.Program {
		p := pisa.NewProgram("fwd")
		p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = port })
		return p
	}
	s2 := core.New(core.Config{Name: "s2"}, core.Baseline(), sched)
	s2.MustLoad(fwd(3))
	s3 := core.New(core.Config{Name: "s3"}, core.Baseline(), sched)
	s3.MustLoad(fwd(3))

	for _, sw := range []*core.Switch{s1, s2, s3} {
		net.AddSwitch(sw)
	}
	src := net.NewHost("src", flow.Src)
	sinkA := net.NewHost("sink-via-s2", flow.Dst)
	sinkB := net.NewHost("sink-via-s3", flow.Dst)
	net.Attach(src, s1, 0, 0)
	primary := net.Connect(s1, 1, s2, 0, 10*sim.Microsecond)
	net.Connect(s1, 2, s3, 0, 10*sim.Microsecond)
	net.Attach(sinkA, s2, 3, 0)
	net.Attach(sinkB, s3, 3, 0)

	gen := workload.NewGen(sched, sim.NewRNG(1), func(d []byte) { src.Send(d) })
	gen.StartCBR(workload.CBRConfig{
		Flow: flow, Size: workload.FixedSize(500), Rate: sim.Gbps, Until: 30 * sim.Millisecond,
	})

	sched.At(10*sim.Millisecond, func() {
		fmt.Printf("t=%v  FAIL primary link %v\n", sched.Now(), primary)
		net.Fail(primary)
	})
	sched.At(20*sim.Millisecond, func() {
		fmt.Printf("t=%v  REPAIR primary link\n", sched.Now())
		net.Repair(primary)
	})

	// Report path usage every 5 ms.
	sched.Every(5*sim.Millisecond, func() {
		fmt.Printf("t=%-6v delivered: via-s2=%-6d via-s3=%-6d (failovers=%d)\n",
			sched.Now(), sinkA.RxPackets, sinkB.RxPackets, frr.Failovers)
	})

	sched.Run(32 * sim.Millisecond)

	lost := gen.SentPackets - sinkA.RxPackets - sinkB.RxPackets
	fmt.Printf("\nsent=%d delivered=%d lost=%d (only packets in flight on the failed link)\n",
		gen.SentPackets, sinkA.RxPackets+sinkB.RxPackets, lost)
	fmt.Printf("primary-routed=%d backup-routed=%d failovers=%d\n",
		frr.RoutedPrimary, frr.RoutedBackup, frr.Failovers)
}
