// Package repro's root benchmarks regenerate every table and figure of
// the paper (and its quantified inline claims): one testing.B benchmark
// per artifact, each delegating to the experiment harness in
// internal/bench. Run them all with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the experiment's wall-clock cost per full run;
// the experiment's table itself is printed once (on the first iteration)
// so `go test -bench` output doubles as the reproduction record. The
// cmd/evbench tool prints the same tables without the benchmark harness.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
)

// runExperiment benchmarks one experiment end-to-end and prints its table
// on the first iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res := e.Run()
		if i == 0 {
			fmt.Println(res.String())
		}
	}
}

// BenchmarkTable1Events reproduces Table 1: all thirteen data-plane
// events firing on the event-driven architecture.
func BenchmarkTable1Events(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Applications reproduces Table 2: one application per
// class, run end-to-end.
func BenchmarkTable2Applications(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Resources reproduces Table 3: the FPGA resource cost of
// event support on the Virtex-7.
func BenchmarkTable3Resources(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig2LogicalArchitecture contrasts the baseline PSA (Figure 1)
// with the event-driven logical architecture (Figure 2) on occupancy
// tracking.
func BenchmarkFig2LogicalArchitecture(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3Aggregation exercises the Figure 3 aggregation-register
// mechanism across packet loads.
func BenchmarkFig3Aggregation(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4LineRate demonstrates the §5 line-rate feasibility claim
// on the Figure 4 datapath.
func BenchmarkFig4LineRate(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkMicroburst reproduces the §2 running example against the
// Snappy-style baseline (state and accuracy).
func BenchmarkMicroburst(b *testing.B) { runExperiment(b, "microburst") }

// BenchmarkCMSReset reproduces the §1 control-plane-overhead argument for
// periodic sketch resets.
func BenchmarkCMSReset(b *testing.B) { runExperiment(b, "cmsreset") }

// BenchmarkStaleness reproduces the §4 bounded-staleness claim across
// overspeed and load.
func BenchmarkStaleness(b *testing.B) { runExperiment(b, "staleness") }

// BenchmarkStudentProjects reproduces the four §5 student projects.
func BenchmarkStudentProjects(b *testing.B) { runExperiment(b, "projects") }

// BenchmarkHULA reproduces the §3 congestion-aware-forwarding experiment:
// HULA probing at data-plane vs control-plane periods.
func BenchmarkHULA(b *testing.B) { runExperiment(b, "hula") }

// BenchmarkAblations quantifies the design choices called out in
// DESIGN.md §5.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkTofino quantifies §6: emulating dequeue events by
// recirculation on a baseline device vs native event support.
func BenchmarkTofino(b *testing.B) { runExperiment(b, "tofino") }

// BenchmarkINTFilter quantifies §3's monitoring claim: event-driven
// aggregation and filtering of INT report volume.
func BenchmarkINTFilter(b *testing.B) { runExperiment(b, "intfilter") }

// BenchmarkAQMFamily runs the four AQM algorithms the paper names (RED,
// AFD, FRED, PIE) plus tail-drop on one shared congestion scenario.
func BenchmarkAQMFamily(b *testing.B) { runExperiment(b, "aqm") }
