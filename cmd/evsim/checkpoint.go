package main

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// checkpointer periodically serializes the whole simulation to one file,
// atomically (temp + rename), so a SIGKILL at any instant leaves either
// the previous checkpoint or the new one — never a torn file.
//
// The checkpoint protocol needs the checkpointer to be part of the state
// it captures: its firing event consumed a scheduler sequence number, so
// a resumed run must replay that event (and the next one) at the exact
// same coordinates or every later event shifts. fire therefore arms the
// next firing before snapshotting, records the just-fired event's
// (at, seq) — the DropFired cut line — and the armed one's, and the
// restore path re-creates the armed firing with RestoreAt.
type checkpointer struct {
	st    *simState
	every sim.Time
	path  string
	dig   uint64

	// Coordinates of the currently armed firing (the handle goes dead
	// the moment it fires, so they are cached at arm time).
	h       sim.Handle
	nextAt  sim.Time
	nextSeq uint64

	wrote int
	err   error // first write failure; reported after the run
}

func newCheckpointer(st *simState) *checkpointer {
	return &checkpointer{st: st, every: st.cfg.ckptEvery, path: st.cfg.ckptPath, dig: st.cfg.digest()}
}

// arm schedules the next firing d from now. Fresh runs arm once at
// construction (after the generators start, keeping the construction
// sequence draw order identical between fresh and resumed builds up to
// that point); every later arming happens inside fire.
func (c *checkpointer) arm(d sim.Time) {
	c.h = c.st.sched.After(d, c.fire)
	c.nextAt, c.nextSeq, _ = c.h.When()
}

func (c *checkpointer) fire() {
	curAt, curSeq := c.nextAt, c.nextSeq
	// Arm the successor before snapshotting so its (at, seq) is part of
	// the captured state: the resumed run re-creates it and keeps firing
	// on the same cadence with the same sequence numbers.
	c.arm(c.every)

	f := checkpoint.New(c.dig)
	e := checkpoint.NewEncoder()
	clk := c.st.sched.Clock()
	e.I64(int64(clk.Now))
	e.U64(clk.Seq)
	e.U64(clk.Fired)
	e.I64(int64(curAt))
	e.U64(curSeq)
	e.I64(int64(c.nextAt))
	e.U64(c.nextSeq)
	f.Add("clock", e.Bytes())

	e = checkpoint.NewEncoder()
	c.st.sw.Snapshot(e)
	f.Add("switch", e.Bytes())

	e = checkpoint.NewEncoder()
	e.Int(len(c.st.gens))
	for _, g := range c.st.gens {
		g.Snapshot(e)
	}
	f.Add("gens", e.Bytes())

	e = checkpoint.NewEncoder()
	e.Bool(c.st.inst != nil)
	if c.st.inst != nil {
		c.st.inst.Snapshot(e)
	}
	f.Add("p4", e.Bytes())

	e = checkpoint.NewEncoder()
	e.Bool(c.st.tel != nil)
	if c.st.tel != nil {
		c.st.tel.SnapshotTo(e)
	}
	f.Add("telemetry", e.Bytes())

	// The firing runs inside domain 0's window, so only the slim
	// partition state (immutable domain count + atomic window counter) is
	// safe to read; domain 0's clock already travels in the clock section.
	e = checkpoint.NewEncoder()
	e.Bool(c.st.part != nil)
	if c.st.part != nil {
		slim := c.st.part.SlimState()
		e.Int(slim.Domains)
		e.U64(slim.Windows)
	}
	f.Add("partition", e.Bytes())

	if err := f.WriteFile(c.path); err != nil && c.err == nil {
		c.err = err
	}
	c.wrote++
}

// restoreRun pours a checkpoint into a freshly built simulation (traffic
// generators prepared but not started) and leaves the scheduler ready to
// continue exactly where the checkpointed run left off. Order matters:
// components re-create their pending events first (the clock is still at
// zero, so nothing lands in the past), then DropFired removes the
// construction-scheduled events the original run had already consumed,
// and RestoreClock pins the counters last.
func restoreRun(st *simState, f *checkpoint.File) (*checkpointer, error) {
	section := func(name string) (*checkpoint.Decoder, error) {
		b, ok := f.Section(name)
		if !ok {
			return nil, fmt.Errorf("checkpoint has no %q section", name)
		}
		return checkpoint.NewDecoder(b), nil
	}

	d, err := section("clock")
	if err != nil {
		return nil, err
	}
	var clk sim.ClockState
	clk.Now = sim.Time(d.I64())
	clk.Seq = d.U64()
	clk.Fired = d.U64()
	curAt := sim.Time(d.I64())
	curSeq := d.U64()
	nextAt := sim.Time(d.I64())
	nextSeq := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}

	d, err = section("switch")
	if err != nil {
		return nil, err
	}
	st.sw.Restore(d)
	if err := d.Err(); err != nil {
		return nil, err
	}

	d, err = section("gens")
	if err != nil {
		return nil, err
	}
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != len(st.gens) {
		return nil, fmt.Errorf("checkpoint has %d generators, this run has %d", n, len(st.gens))
	}
	for _, g := range st.gens {
		g.Restore(d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	d, err = section("p4")
	if err != nil {
		return nil, err
	}
	hadInst := d.Bool()
	if hadInst != (st.inst != nil) {
		return nil, fmt.Errorf("checkpoint µP4 instance presence (%v) differs from this run", hadInst)
	}
	if st.inst != nil {
		st.inst.Restore(d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	d, err = section("telemetry")
	if err != nil {
		return nil, err
	}
	hadTel := d.Bool()
	if hadTel != (st.tel != nil) {
		return nil, fmt.Errorf("checkpoint telemetry presence (%v) differs from this run", hadTel)
	}
	if st.tel != nil {
		st.tel.RestoreFrom(d)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	d, err = section("partition")
	if err != nil {
		return nil, err
	}
	hadPart := d.Bool()
	if hadPart != (st.part != nil) {
		return nil, fmt.Errorf("checkpoint partition presence (%v) differs from this run", hadPart)
	}
	if st.part != nil {
		slim := sim.SlimPartitionState{Domains: d.Int(), Windows: d.U64()}
		if err := st.part.RestoreSlimState(slim); err != nil {
			return nil, err
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	ck := newCheckpointer(st)
	ck.nextAt, ck.nextSeq = nextAt, nextSeq
	ck.h = st.sched.RestoreAt(nextAt, nextSeq, ck.fire)

	st.sched.DropFired(curAt, curSeq)
	st.sched.RestoreClock(clk)
	return ck, nil
}
