package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestExitCodes pins the exit-code contract: 0 ok, 1 runtime failure,
// 2 usage error. The crash harness and CI scripts depend on telling a
// crashed run from a misused one.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	if code := runQuiet(t, "-ms", "1", "-checkpoint-every", "500us", "-checkpoint", ckpt); code != exitOK {
		t.Fatalf("checkpointed run exited %d, want %d", code, exitOK)
	}
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-h"}, exitOK},
		{[]string{"-not-a-flag"}, exitUsage},
		{[]string{"-arch", "bogus"}, exitUsage},
		{[]string{"-ms", "0"}, exitUsage},
		{[]string{"-ports", "-2"}, exitUsage},
		{[]string{"-checkpoint-every", "1ms"}, exitUsage},                          // no -checkpoint
		{[]string{"-checkpoint-every", "soon", "-checkpoint", ckpt}, exitUsage},    // bad duration
		{[]string{"-p4", filepath.Join(dir, "missing.up4")}, exitRuntime},          // unreadable program
		{[]string{"-resume", filepath.Join(dir, "missing.ckpt")}, exitRuntime},     // unreadable checkpoint
		{[]string{"-ms", "1", "-load", "0.5", "-resume", ckpt}, exitUsage},         // digest mismatch
		// A checkpoint cut by the burst engine must not silently resume
		// under the per-packet oracle (or vice versa): -burst is part of
		// the config digest, so the mode flip is refused up front.
		{[]string{"-ms", "1", "-burst", "0", "-checkpoint-every", "500us", "-resume", ckpt}, exitUsage},
		{[]string{"-ms", "1", "-checkpoint-every", "500us", "-resume", ckpt}, exitOK},
	}
	for _, c := range cases {
		if got := runQuiet(t, c.args...); got != c.want {
			t.Errorf("run(%v) = %d, want %d", c.args, got, c.want)
		}
	}
}

func runQuiet(t *testing.T, args ...string) int {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	t.Logf("run(%v) -> %d\n%s%s", args, code, out.String(), errw.String())
	return code
}

// TestResumeByteIdenticalInProcess verifies, without any crash, that a
// run resumed from its last checkpoint prints byte-identical statistics
// to the uninterrupted run.
func TestResumeByteIdenticalInProcess(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	flags := []string{"-ms", "4", "-checkpoint-every", "1ms"}

	// The un-checkpointed run pins that checkpointing itself does not
	// perturb the statistics.
	var plain bytes.Buffer
	if code := run([]string{"-ms", "4"}, &plain, &bytes.Buffer{}); code != exitOK {
		t.Fatalf("reference run exited %d", code)
	}
	var first bytes.Buffer
	if code := run(append(append([]string{}, flags...), "-checkpoint", ckpt), &first, &bytes.Buffer{}); code != exitOK {
		t.Fatalf("checkpointed run exited %d", code)
	}
	var resumed bytes.Buffer
	var errw bytes.Buffer
	if code := run(append(append([]string{}, flags...), "-resume", ckpt), &resumed, &errw); code != exitOK {
		t.Fatalf("resumed run exited %d: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "resumed from") {
		t.Errorf("resume did not report its restore point: %q", errw.String())
	}
	if plain.String() != first.String() || first.String() != resumed.String() {
		t.Errorf("outputs diverge:\n--- plain ---\n%s--- checkpointed ---\n%s--- resumed ---\n%s",
			plain.String(), first.String(), resumed.String())
	}

	// The same cycle under the per-packet oracle (-burst 0): the oracle's
	// checkpoint/resume must be self-consistent, and its statistics must
	// match the burst engine's byte for byte — the evsim-level burst
	// differential.
	ckptOracle := filepath.Join(dir, "oracle.ckpt")
	oflags := []string{"-ms", "4", "-burst", "0", "-checkpoint-every", "1ms"}
	var ofirst bytes.Buffer
	if code := run(append(append([]string{}, oflags...), "-checkpoint", ckptOracle), &ofirst, &bytes.Buffer{}); code != exitOK {
		t.Fatalf("oracle checkpointed run exited %d", code)
	}
	var oresumed bytes.Buffer
	if code := run(append(append([]string{}, oflags...), "-resume", ckptOracle), &oresumed, &errw); code != exitOK {
		t.Fatalf("oracle resumed run exited %d: %s", code, errw.String())
	}
	if ofirst.String() != oresumed.String() {
		t.Errorf("oracle resume diverges:\n--- checkpointed ---\n%s--- resumed ---\n%s",
			ofirst.String(), oresumed.String())
	}
	if ofirst.String() != plain.String() {
		t.Errorf("burst engine and per-packet oracle diverge:\n--- burst ---\n%s--- oracle ---\n%s",
			plain.String(), ofirst.String())
	}
}

// TestPartitionedResumeByteIdentical is the mid-batch checkpoint
// differential: under -domains the checkpointer fires inside domain 0's
// window (between barriers, while other domains' goroutines are live),
// so a resume from such a checkpoint exercises the slim partition
// section. The partitioned run's statistics must match the plain run's
// byte for byte, with and without a resume, and a resume under a
// different -domains value must be refused via the config digest.
func TestPartitionedResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "part.ckpt")
	flags := []string{"-ms", "4", "-domains", "4", "-checkpoint-every", "1ms"}

	var plain bytes.Buffer
	if code := run([]string{"-ms", "4"}, &plain, &bytes.Buffer{}); code != exitOK {
		t.Fatalf("reference run exited %d", code)
	}
	var first bytes.Buffer
	if code := run(append(append([]string{}, flags...), "-checkpoint", ckpt), &first, &bytes.Buffer{}); code != exitOK {
		t.Fatalf("partitioned checkpointed run exited %d", code)
	}
	var resumed, errw bytes.Buffer
	if code := run(append(append([]string{}, flags...), "-resume", ckpt), &resumed, &errw); code != exitOK {
		t.Fatalf("partitioned resumed run exited %d: %s", code, errw.String())
	}
	if plain.String() != first.String() || first.String() != resumed.String() {
		t.Errorf("outputs diverge:\n--- plain ---\n%s--- partitioned ---\n%s--- resumed ---\n%s",
			plain.String(), first.String(), resumed.String())
	}

	// Cross-domain-count resume: refused up front (usage error), exactly
	// like any other behaviour-affecting flag change.
	if code := runQuiet(t, "-ms", "4", "-domains", "2", "-checkpoint-every", "1ms", "-resume", ckpt); code != exitUsage {
		t.Errorf("resume under different -domains exited %d, want %d", code, exitUsage)
	}
	for _, bad := range []string{"0", "-3", "zebra"} {
		if code := runQuiet(t, "-domains", bad); code != exitUsage {
			t.Errorf("-domains %s exited %d, want %d", bad, code, exitUsage)
		}
	}
	if code := runQuiet(t, "-ms", "1", "-domains", "auto"); code != exitOK {
		t.Errorf("-domains auto exited %d, want %d", code, exitOK)
	}
}

// TestCrashSIGKILLResume is the crash-injection differential harness:
// run the real binary with periodic checkpoints, SIGKILL it at a
// randomized instant mid-run, resume from whatever checkpoint survived,
// and require the final statistics to be byte-identical to an
// uninterrupted run with the same flags.
func TestCrashSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "evsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const horizon = "30" // ~2s wall: the kill window below always lands mid-run
	ckpt := filepath.Join(dir, "crash.ckpt")
	// Default flags run the burst engine (-burst -1), so the SIGKILL lands
	// in a run whose checkpoints carry conveyor entries and arrival-FIFO
	// frames mid-burst.
	flags := []string{"-ms", horizon, "-checkpoint-every", "2ms"}

	ref, err := exec.Command(bin, append(append([]string{}, flags...), "-checkpoint", filepath.Join(dir, "ref.ckpt"))...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cmd := exec.Command(bin, append(append([]string{}, flags...), "-checkpoint", ckpt)...)
	var crashOut bytes.Buffer
	cmd.Stdout = &crashOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("no checkpoint appeared within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	delay := time.Duration(rand.Int63n(int64(700 * time.Millisecond)))
	t.Logf("first checkpoint on disk; killing after %v", delay)
	time.Sleep(delay)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("process did not die by SIGKILL (err=%v); the kill window is too slow for this machine", err)
	}

	resume := exec.Command(bin, append(append([]string{}, flags...), "-resume", ckpt)...)
	var resumedOut, resumedErr bytes.Buffer
	resume.Stdout, resume.Stderr = &resumedOut, &resumedErr
	if err := resume.Run(); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, resumedErr.String())
	}
	if !strings.Contains(resumedErr.String(), "resumed from") {
		t.Errorf("resume did not report its restore point: %q", resumedErr.String())
	}
	if got, want := resumedOut.String(), string(ref); got != want {
		t.Errorf("resumed run diverges from uninterrupted run:\n--- uninterrupted ---\n%s--- resumed after SIGKILL ---\n%s", want, got)
	}
	fmt.Fprintf(os.Stderr, "crash harness: killed after %v, resumed at %s\n",
		delay, strings.TrimPrefix(strings.TrimSpace(resumedErr.String()), "evsim: "))
}
