// Command evsim runs a single SUME Event Switch scenario and prints the
// switch's statistics: a quick way to poke at the simulator from the
// command line.
//
//	evsim -arch event -load 0.9 -size 576 -ms 10
//	evsim -arch baseline -overspeed 1.0 -load 1.0
//	evsim -p4 program.up4 -ms 5
//	evsim -p4 program.up4 -interp    # interpreter oracle instead of compiled closures
//	evsim -burst 0                   # per-packet datapath (burst differential oracle)
//	evsim -ms 10 -checkpoint-every 1ms -checkpoint run.ckpt
//	evsim -ms 10 -checkpoint-every 1ms -resume run.ckpt
//	evsim -ms 10 -http 127.0.0.1:9100   # /metrics, /status, /debug/pprof
//	evsim -ms 10 -stream-trace t.jsonl -stream-metrics m.jsonl -stream-every 250ms
//	evsim -ms 10 -domains 4          # run under a 4-domain partition (switch in domain 0)
//	evsim -ms 10 -domains auto       # one domain per core, clamped to the task count
//
// With -p4, the given µP4 program is compiled and loaded instead of the
// built-in port-pairing forwarder (ports are paired 0<->1, 2<->3 there).
// -interp executes it with the tree-walking interpreter instead of the
// specialized Go closures; the observable behaviour is identical.
//
// -checkpoint-every writes a checkpoint of the full simulator state to
// the -checkpoint file at a fixed simulated-time cadence (atomically: a
// crash mid-write leaves the previous checkpoint intact). -resume loads
// such a file and continues the run; the resumed run's statistics,
// telemetry metrics, and traces are byte-identical to the uninterrupted
// run's. A resume must use the same flags as the run that wrote the
// checkpoint — the file carries a config digest and mismatches are
// refused (see DESIGN.md §13).
//
// -http serves a read-only introspection endpoint while the run is in
// flight: Prometheus-text self-metrics and the latest deterministic
// snapshot on /metrics, a JSON progress document on /status, and the
// standard pprof handlers under /debug/pprof. -stream-trace and
// -stream-metrics flush trace records and metrics-document lines to disk
// incrementally on a wall-clock cadence (-stream-every). The whole
// observability plane is observation-only: statistics, telemetry
// exports, digests, and checkpoints are byte-identical with it on or
// off (DESIGN.md §15).
//
// Exit codes: 0 on success, 1 on runtime failure (unreadable files,
// compile errors, write failures), 2 on usage errors (bad flags, a
// checkpoint that does not match the flags).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/self"
	"repro/internal/workload"
)

// Exit codes: the crash-injection harness and CI scripts tell a crashed
// run (signal / exit 1) from a misused one (exit 2).
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// usageError marks an error as operator misuse (exit 2) rather than a
// runtime failure (exit 1).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// config is every flag that affects simulation behaviour, resolved and
// validated. Its digest pins a checkpoint to the exact run configuration.
type config struct {
	archName  string
	load      float64
	size      int
	ms        int
	overspeed float64
	ports     int
	gbps      int64
	p4file    string
	p4src     string // program source (content, not path)
	interp    bool
	burst     int
	seed      uint64
	trace     int
	traceFile string
	metrics   string
	// domains is the resolved partition domain count ("auto" resolves
	// against the task count — one switch — before it lands here, so the
	// digest always folds the effective value).
	domains int

	ckptEvery sim.Time
	ckptPath  string
	resume    string

	// Observability plane: read-only, so none of these affect simulation
	// behaviour — but streaming needs a collector, so the stream paths
	// participate in telemetryOn (and through it the config digest).
	httpAddr      string
	streamTrace   string
	streamMetrics string
	streamEvery   time.Duration
}

func (c *config) telemetryOn() bool {
	return c.traceFile != "" || c.metrics != "" || c.streaming()
}

func (c *config) streaming() bool { return c.streamTrace != "" || c.streamMetrics != "" }

func (c *config) obsOn() bool { return c.httpAddr != "" || c.streaming() }

// digest fingerprints the behaviour-affecting configuration. The
// checkpoint and trace file paths are deliberately excluded: they change
// where output lands, not what the simulation does. Whether telemetry is
// enabled at all is included, because enabling it changes the
// construction path (the sampler ticker draws an event sequence number).
func (c *config) digest() uint64 {
	return checkpoint.Digest(
		"evsim",
		c.archName,
		fmt.Sprint(c.load),
		fmt.Sprint(c.size),
		fmt.Sprint(c.ms),
		fmt.Sprint(c.overspeed),
		fmt.Sprint(c.ports),
		fmt.Sprint(c.gbps),
		c.p4src,
		fmt.Sprint(c.interp),
		fmt.Sprint(c.burst),
		fmt.Sprint(c.seed),
		fmt.Sprint(c.telemetryOn()),
		fmt.Sprint(int64(c.ckptEvery)),
		fmt.Sprint(c.domains),
	)
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("evsim", flag.ContinueOnError)
	fs.SetOutput(errw)
	arch := fs.String("arch", "event", "architecture: event | baseline")
	load := fs.Float64("load", 0.9, "offered load per port (1.0 = line rate)")
	size := fs.Int("size", 60, "frame size in bytes (60..1514)")
	ms := fs.Int("ms", 10, "simulated milliseconds")
	overspeed := fs.Float64("overspeed", 1.1, "pipeline overspeed factor")
	ports := fs.Int("ports", 4, "switch ports")
	rate := fs.Int64("gbps", 10, "per-port line rate in Gb/s")
	p4file := fs.String("p4", "", "µP4 program to load (default: built-in forwarder)")
	interp := fs.Bool("interp", false,
		"run the -p4 program under the interpreter instead of compiled closures")
	burst := fs.Int("burst", -1,
		"burst slot budget per pipeline wakeup (0 = per-packet differential oracle, -1 = default)")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	domainsFlag := fs.String("domains", "1",
		"partition domains (a count, or \"auto\" = one per core clamped to the task count); the switch runs in domain 0")
	trace := fs.Int("trace", 0, "print the first N pipeline slots")
	traceFile := fs.String("tracefile", "",
		"write the event-lifecycle trace to `file` (.jsonl = JSON lines, else Chrome JSON)")
	metricsFile := fs.String("metrics", "", "write the telemetry metrics document to `file`")
	ckptEvery := fs.String("checkpoint-every", "",
		"write a checkpoint every simulated `interval` (e.g. 500us, 2ms; empty = off)")
	ckptPath := fs.String("checkpoint", "", "checkpoint `file` (required with -checkpoint-every)")
	resume := fs.String("resume", "", "resume from checkpoint `file` instead of starting fresh")
	httpAddr := fs.String("http", "",
		"serve the introspection endpoint (/metrics, /status, /debug/pprof) on `addr`")
	streamTrace := fs.String("stream-trace", "",
		"stream trace records incrementally to `file` during the run (.json/.trace = Chrome array, else JSONL)")
	streamMetrics := fs.String("stream-metrics", "",
		"stream one metrics-document line per flush to `file` during the run")
	streamEvery := fs.Duration("stream-every", 500*time.Millisecond,
		"wall-clock flush period for -stream-trace/-stream-metrics")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}

	cfg := &config{
		archName: *arch, load: *load, size: *size, ms: *ms,
		overspeed: *overspeed, ports: *ports, gbps: *rate,
		p4file: *p4file, interp: *interp, burst: *burst, seed: *seed, trace: *trace,
		traceFile: *traceFile, metrics: *metricsFile,
		ckptPath: *ckptPath, resume: *resume,
		httpAddr: *httpAddr, streamTrace: *streamTrace,
		streamMetrics: *streamMetrics, streamEvery: *streamEvery,
	}
	if err := finishConfig(cfg, *ckptEvery, *domainsFlag); err != nil {
		fmt.Fprintf(errw, "evsim: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			return exitUsage
		}
		return exitRuntime
	}
	if err := simulate(cfg, out, errw); err != nil {
		fmt.Fprintf(errw, "evsim: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			return exitUsage
		}
		return exitRuntime
	}
	return exitOK
}

// finishConfig validates flag values, loads the µP4 source, parses the
// checkpoint cadence, and resolves the partition domain count.
func finishConfig(cfg *config, every, domains string) error {
	switch cfg.archName {
	case "event", "baseline":
	default:
		return usagef("unknown arch %q (want event or baseline)", cfg.archName)
	}
	if domains == "auto" {
		// One switch = one task: auto resolves to a single domain on any
		// host, and that effective value is what the config digest folds.
		cfg.domains = sim.AutoDomains(1)
	} else {
		n, err := strconv.Atoi(domains)
		if err != nil || n < 1 {
			return usagef("-domains must be a positive integer or \"auto\" (got %q)", domains)
		}
		cfg.domains = n
	}
	if cfg.ms <= 0 {
		return usagef("-ms must be positive, got %d", cfg.ms)
	}
	if cfg.ports <= 0 {
		return usagef("-ports must be positive, got %d", cfg.ports)
	}
	if cfg.p4file != "" {
		src, err := os.ReadFile(cfg.p4file)
		if err != nil {
			return fmt.Errorf("reading -p4 program: %w", err)
		}
		cfg.p4src = string(src)
	}
	if every != "" {
		d, err := time.ParseDuration(every)
		if err != nil || d <= 0 {
			return usagef("bad -checkpoint-every %q (want a positive duration like 500us or 2ms)", every)
		}
		cfg.ckptEvery = sim.Time(d.Nanoseconds()) * sim.Nanosecond
	}
	if cfg.ckptEvery > 0 && cfg.ckptPath == "" && cfg.resume == "" {
		return usagef("-checkpoint-every needs -checkpoint (where to write)")
	}
	if cfg.ckptPath == "" {
		// Resuming keeps checkpointing into the same file by default.
		cfg.ckptPath = cfg.resume
	}
	return nil
}

// build constructs the simulation through the one deterministic
// construction path shared by fresh starts and resumes (DESIGN.md §13:
// restore pours state into an identically built object graph). When
// start is true the traffic generators fire their first emission; a
// resume leaves them prepared and re-arms them from the checkpoint.
type simState struct {
	cfg   *config
	part  *sim.Partition // nil when cfg.domains == 1
	sched *sim.Scheduler
	arch  *core.Arch
	sw    *core.Switch
	inst  *p4.Instance
	tel   *telemetry.Collector
	gens  []*workload.Gen
}

func build(cfg *config, start bool, out io.Writer) (*simState, error) {
	st := &simState{cfg: cfg}
	if cfg.domains > 1 {
		// The single switch lives in domain 0 of an N-domain partition.
		// The other domains never hold events, so no cross-domain frame
		// can ever arrive: an infinite lookahead is sound and lets every
		// domain run to the horizon in one window. The point of this mode
		// is exercising the barrier protocol around a live checkpointing
		// simulation, not parallelism.
		st.part = sim.NewPartition(cfg.domains)
		st.part.SetLookahead(sim.Forever)
		st.sched = st.part.Sched(0)
	} else {
		st.sched = sim.NewScheduler()
	}
	switch cfg.archName {
	case "event":
		st.arch = core.EventDriven()
	case "baseline":
		st.arch = core.Baseline()
	}
	swCfg := core.Config{
		Name:      "evsim",
		Ports:     cfg.ports,
		LineRate:  sim.Rate(cfg.gbps) * sim.Gbps,
		Overspeed: cfg.overspeed,
	}
	if cfg.burst == 0 {
		swCfg.NoBurst = true
	} else if cfg.burst > 0 {
		swCfg.BurstSlots = cfg.burst
	}
	st.sw = core.New(swCfg, st.arch, st.sched)

	var prog *pisa.Program
	if cfg.p4src != "" {
		compiled, err := p4.Compile(cfg.p4src)
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", cfg.p4file, err)
		}
		st.inst = compiled.Instantiate(cfg.p4file, p4.Options{Interpret: cfg.interp})
		prog = st.inst.Program()
		backend := "compiled"
		if st.inst.Interpreted() {
			backend = "interp"
		}
		fmt.Fprintf(out, "loaded %s (controls: %v, backend: %s)\n", cfg.p4file, compiled.Controls(), backend)
		for _, h := range compiled.Analyze() {
			level := "note"
			if h.Fatal {
				level = "ERROR"
			}
			fmt.Fprintf(out, "analysis %s: %v\n", level, h)
		}
	} else {
		prog = pisa.NewProgram("forwarder")
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			ctx.EgressPort = ctx.Pkt.InPort ^ 1
		})
		if st.arch.Supports(events.BufferEnqueue) {
			occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
				events.BufferEnqueue, events.BufferDequeue))
			prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
				occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
			})
			prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
				occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
			})
		}
	}
	if err := st.sw.Load(prog); err != nil {
		return nil, fmt.Errorf("loading program: %w", err)
	}
	if cfg.telemetryOn() {
		st.tel = telemetry.New(telemetry.Options{
			TraceCap:     telemetry.DefaultTraceCap,
			SamplePeriod: telemetry.DefaultSamplePeriod,
			Live:         cfg.obsOn(),
		})
		st.sw.EnableTelemetry(st.tel)
	}
	if cfg.trace > 0 {
		remaining := cfg.trace
		st.sw.OnSlot = func(info core.SlotInfo) {
			if remaining <= 0 {
				return
			}
			remaining--
			kind := info.PktKind.String()
			if info.Empty {
				kind = "EmptyPacket"
			}
			fmt.Fprintf(out, "cycle=%-8d t=%-12v slot=%-18s len=%-5d events=%v\n",
				info.Cycle, info.At, kind, info.PktLen, info.Events)
		}
	}

	horizon := sim.Time(cfg.ms) * sim.Millisecond
	rng := sim.NewRNG(cfg.seed)
	for port := 0; port < cfg.ports; port++ {
		port := port
		g := workload.NewGen(st.sched, rng.Split(), func(d []byte) { st.sw.Inject(port, d) })
		fl := packet.Flow{
			Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP,
		}
		sc := workload.SaturateConfig{
			Flow: fl, Rate: sim.Rate(cfg.gbps) * sim.Gbps,
			Load: cfg.load, Size: cfg.size, Until: horizon,
		}
		if start {
			g.StartSaturate(sc)
		} else {
			g.PrepareSaturate(sc)
		}
		st.gens = append(st.gens, g)
	}
	return st, nil
}

func simulate(cfg *config, out, errw io.Writer) error {
	var st *simState
	var ck *checkpointer
	horizon := sim.Time(cfg.ms) * sim.Millisecond

	if cfg.resume != "" {
		f, err := checkpoint.Open(cfg.resume)
		if err != nil {
			return err
		}
		if f.ConfigDigest != cfg.digest() {
			return usagef("checkpoint %s was written under different flags (config digest %#x, these flags %#x); "+
				"resume with the same configuration", cfg.resume, f.ConfigDigest, cfg.digest())
		}
		st, err = build(cfg, false, out)
		if err != nil {
			return err
		}
		ck, err = restoreRun(st, f)
		if err != nil {
			return fmt.Errorf("restoring %s: %w", cfg.resume, err)
		}
		fmt.Fprintf(errw, "evsim: resumed from %s at t=%v\n", cfg.resume, st.sched.Now())
	} else {
		var err error
		st, err = build(cfg, true, out)
		if err != nil {
			return err
		}
		if cfg.ckptEvery > 0 {
			ck = newCheckpointer(st)
			ck.arm(cfg.ckptEvery)
		}
	}

	// Observability plane: started after build/restore (so checkpoint
	// restoration's single-threaded writes finish before any scrape) and
	// strictly read-only — stats, telemetry exports, and checkpoints are
	// byte-identical with it on or off.
	if cfg.obsOn() {
		self.Enable()
	}
	if cfg.httpAddr != "" {
		srv, err := obs.Serve(obs.Options{
			Addr: cfg.httpAddr,
			Runs: func() []telemetry.RunExport {
				if st.tel == nil {
					return nil
				}
				return []telemetry.RunExport{{Label: "evsim", C: st.tel}}
			},
			Status: func() map[string]any {
				return map[string]any{
					"binary":        "evsim",
					"arch":          cfg.archName,
					"config_digest": fmt.Sprintf("%#x", cfg.digest()),
					"horizon_ps":    int64(horizon),
				}
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(errw, "evsim: introspection endpoint on http://%s\n", srv.Addr())
	}
	var sink *telemetry.StreamSink
	if cfg.streaming() {
		var err error
		sink, err = telemetry.NewStreamSink(telemetry.StreamOptions{
			TracePath:   cfg.streamTrace,
			MetricsPath: cfg.streamMetrics,
			Interval:    cfg.streamEvery,
		})
		if err != nil {
			return err
		}
		sink.Attach("evsim", st.tel)
	}

	if st.part != nil {
		st.part.Run(horizon + 2*sim.Millisecond)
	} else {
		st.sched.Run(horizon + 2*sim.Millisecond)
	}
	if ck != nil && ck.err != nil {
		return fmt.Errorf("writing checkpoint: %w", ck.err)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("closing stream sink: %w", err)
		}
		if cfg.streamTrace != "" {
			fmt.Fprintf(errw, "evsim: streamed %s\n", cfg.streamTrace)
		}
		if cfg.streamMetrics != "" {
			fmt.Fprintf(errw, "evsim: streamed %s\n", cfg.streamMetrics)
		}
	}

	if st.tel != nil {
		runs := []telemetry.RunExport{{Label: "evsim", C: st.tel}}
		if cfg.traceFile != "" {
			var err error
			if strings.HasSuffix(cfg.traceFile, ".jsonl") {
				err = telemetry.WriteJSONL(cfg.traceFile, runs)
			} else {
				err = telemetry.WriteChromeTrace(cfg.traceFile, runs)
			}
			if err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
			fmt.Fprintf(errw, "evsim: wrote trace %s\n", cfg.traceFile)
		}
		if cfg.metrics != "" {
			if err := telemetry.WriteMetrics(cfg.metrics, runs); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
			fmt.Fprintf(errw, "evsim: wrote metrics %s\n", cfg.metrics)
		}
	}

	stats := st.sw.Stats()
	fmt.Fprintf(out, "arch=%s cycleTime=%v horizon=%v\n", st.arch.Name, st.sw.CycleTime(), horizon)
	fmt.Fprintf(out, "rx=%d tx=%d (%.2f%% delivered) drops: pipeline=%d linkDown=%d\n",
		stats.RxPackets, stats.TxPackets,
		100*float64(stats.TxPackets)/float64(max64(stats.RxPackets, 1)),
		stats.PipelineDrops, stats.TxDroppedLinkDown)
	fmt.Fprintf(out, "cycles=%d packetSlots=%d emptySlots=%d drainSlots=%d recirc=%d generated=%d\n",
		stats.Cycles, stats.PacketSlots, stats.EmptySlots, stats.DrainSlots, stats.Recirculated, stats.Generated)
	for k := 0; k < events.NumKinds; k++ {
		kind := events.Kind(k)
		if stats.EventsMerged[k] > 0 || stats.EventsDropped[k] > 0 {
			fmt.Fprintf(out, "  event %-22s merged=%-10d fifoDrops=%d\n",
				kind, stats.EventsMerged[k], stats.EventsDropped[k])
		}
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
