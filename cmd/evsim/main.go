// Command evsim runs a single SUME Event Switch scenario and prints the
// switch's statistics: a quick way to poke at the simulator from the
// command line.
//
//	evsim -arch event -load 0.9 -size 576 -ms 10
//	evsim -arch baseline -overspeed 1.0 -load 1.0
//	evsim -p4 program.up4 -ms 5
//	evsim -p4 program.up4 -interp    # interpreter oracle instead of compiled closures
//
// With -p4, the given µP4 program is compiled and loaded instead of the
// built-in port-pairing forwarder (ports are paired 0<->1, 2<->3 there).
// -interp executes it with the tree-walking interpreter instead of the
// specialized Go closures; the observable behaviour is identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	arch := flag.String("arch", "event", "architecture: event | baseline")
	load := flag.Float64("load", 0.9, "offered load per port (1.0 = line rate)")
	size := flag.Int("size", 60, "frame size in bytes (60..1514)")
	ms := flag.Int("ms", 10, "simulated milliseconds")
	overspeed := flag.Float64("overspeed", 1.1, "pipeline overspeed factor")
	ports := flag.Int("ports", 4, "switch ports")
	rate := flag.Int64("gbps", 10, "per-port line rate in Gb/s")
	p4file := flag.String("p4", "", "µP4 program to load (default: built-in forwarder)")
	interp := flag.Bool("interp", false,
		"run the -p4 program under the interpreter instead of compiled closures")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	trace := flag.Int("trace", 0, "print the first N pipeline slots")
	traceFile := flag.String("tracefile", "",
		"write the event-lifecycle trace to `file` (.jsonl = JSON lines, else Chrome JSON)")
	metricsFile := flag.String("metrics", "", "write the telemetry metrics document to `file`")
	flag.Parse()

	sched := sim.NewScheduler()
	var a *core.Arch
	switch *arch {
	case "event":
		a = core.EventDriven()
	case "baseline":
		a = core.Baseline()
	default:
		fmt.Fprintf(os.Stderr, "evsim: unknown arch %q\n", *arch)
		os.Exit(1)
	}
	sw := core.New(core.Config{
		Name:      "evsim",
		Ports:     *ports,
		LineRate:  sim.Rate(*rate) * sim.Gbps,
		Overspeed: *overspeed,
	}, a, sched)

	var prog *pisa.Program
	if *p4file != "" {
		src, err := os.ReadFile(*p4file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evsim:", err)
			os.Exit(1)
		}
		compiled, err := p4.Compile(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "evsim: compile:", err)
			os.Exit(1)
		}
		inst := compiled.Instantiate(*p4file, p4.Options{Interpret: *interp})
		prog = inst.Program()
		backend := "compiled"
		if inst.Interpreted() {
			backend = "interp"
		}
		fmt.Printf("loaded %s (controls: %v, backend: %s)\n", *p4file, compiled.Controls(), backend)
		for _, h := range compiled.Analyze() {
			level := "note"
			if h.Fatal {
				level = "ERROR"
			}
			fmt.Printf("analysis %s: %v\n", level, h)
		}
	} else {
		prog = pisa.NewProgram("forwarder")
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			ctx.EgressPort = ctx.Pkt.InPort ^ 1
		})
		if a.Supports(events.BufferEnqueue) {
			occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
				events.BufferEnqueue, events.BufferDequeue))
			prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
				occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
			})
			prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
				occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
			})
		}
	}
	if err := sw.Load(prog); err != nil {
		fmt.Fprintln(os.Stderr, "evsim:", err)
		os.Exit(1)
	}
	var tel *telemetry.Collector
	if *traceFile != "" || *metricsFile != "" {
		tel = telemetry.New(telemetry.Options{
			TraceCap:     telemetry.DefaultTraceCap,
			SamplePeriod: telemetry.DefaultSamplePeriod,
		})
		sw.EnableTelemetry(tel)
	}
	if *trace > 0 {
		remaining := *trace
		sw.OnSlot = func(info core.SlotInfo) {
			if remaining <= 0 {
				return
			}
			remaining--
			kind := info.PktKind.String()
			if info.Empty {
				kind = "EmptyPacket"
			}
			fmt.Printf("cycle=%-8d t=%-12v slot=%-18s len=%-5d events=%v\n",
				info.Cycle, info.At, kind, info.PktLen, info.Events)
		}
	}

	horizon := sim.Time(*ms) * sim.Millisecond
	rng := sim.NewRNG(*seed)
	for port := 0; port < *ports; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{
			Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP,
		}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: sim.Rate(*rate) * sim.Gbps, Load: *load, Size: *size, Until: horizon,
		})
	}
	sched.Run(horizon + 2*sim.Millisecond)

	if tel != nil {
		runs := []telemetry.RunExport{{Label: "evsim", C: tel}}
		if *traceFile != "" {
			var err error
			if strings.HasSuffix(*traceFile, ".jsonl") {
				err = telemetry.WriteJSONL(*traceFile, runs)
			} else {
				err = telemetry.WriteChromeTrace(*traceFile, runs)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "evsim:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote trace %s\n", *traceFile)
		}
		if *metricsFile != "" {
			if err := telemetry.WriteMetrics(*metricsFile, runs); err != nil {
				fmt.Fprintln(os.Stderr, "evsim:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote metrics %s\n", *metricsFile)
		}
	}

	st := sw.Stats()
	fmt.Printf("arch=%s cycleTime=%v horizon=%v\n", a.Name, sw.CycleTime(), horizon)
	fmt.Printf("rx=%d tx=%d (%.2f%% delivered) drops: pipeline=%d linkDown=%d\n",
		st.RxPackets, st.TxPackets,
		100*float64(st.TxPackets)/float64(max64(st.RxPackets, 1)),
		st.PipelineDrops, st.TxDroppedLinkDown)
	fmt.Printf("cycles=%d packetSlots=%d emptySlots=%d drainSlots=%d recirc=%d generated=%d\n",
		st.Cycles, st.PacketSlots, st.EmptySlots, st.DrainSlots, st.Recirculated, st.Generated)
	for k := 0; k < events.NumKinds; k++ {
		kind := events.Kind(k)
		if st.EventsMerged[k] > 0 || st.EventsDropped[k] > 0 {
			fmt.Printf("  event %-22s merged=%-10d fifoDrops=%d\n",
				kind, st.EventsMerged[k], st.EventsDropped[k])
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
