// Command evbench regenerates the paper's tables and figures from the
// simulator. With no flags it runs every experiment; -exp selects one.
//
//	evbench                          # run everything
//	evbench -exp table3              # just the Table 3 reproduction
//	evbench -experiment resilience   # same flag, long spelling
//	evbench -list                    # list experiment ids
//	evbench -parallel 8              # 8 worker goroutines per experiment
//	evbench -domains 4               # split topologies across 4 partition domains
//	evbench -interp                  # run µP4 programs under the interpreter oracle
//	evbench -benchjson .             # also write BENCH_<id>.json per experiment
//	evbench -cpuprofile cpu.pprof    # write a CPU profile
//	evbench -memprofile mem.pprof    # write an allocation profile
//	evbench -exp hula -trace t.json -metrics m.json
//	                                 # telemetry: lifecycle trace + metrics export
//
// -trace writes the event-lifecycle trace (Chrome/Perfetto trace-event
// JSON, or JSON lines when the file ends in .jsonl); -metrics writes the
// metrics registry document. Both need -exp (one experiment per export)
// and work for the instrumented experiments (staleness, hula, scale).
//
// Output is identical for every -parallel and -domains value: trials are
// distributed across workers but result rows are emitted in trial order,
// and partitioned topologies execute byte-identically to single-threaded.
// That extends to telemetry: trace and metrics files are byte-identical
// at any -parallel and -domains setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/p4"
	"repro/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	flag.StringVar(exp, "experiment", "", "alias for -exp")
	list := flag.Bool("list", false, "list experiment ids and exit")
	par := flag.Int("parallel", bench.Parallelism(),
		"worker goroutines for experiment trials (0 = GOMAXPROCS)")
	domains := flag.Int("domains", bench.Domains(),
		"partition domains for topology experiments (intra-trial parallelism)")
	benchjson := flag.String("benchjson", "",
		"write BENCH_<experiment>.json reports into `dir`")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write allocation profile to `file`")
	traceFile := flag.String("trace", "",
		"write the event-lifecycle trace to `file` (.jsonl = JSON lines, else Chrome JSON); needs -exp")
	metricsFile := flag.String("metrics", "",
		"write the telemetry metrics document to `file`; needs -exp")
	interp := flag.Bool("interp", false,
		"execute µP4 programs with the interpreter instead of compiled closures (differential oracle)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Paper)
		}
		return
	}

	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}
	bench.SetParallelism(*par)
	bench.SetDomains(*domains)
	p4.ForceInterpret = *interp

	if *traceFile != "" || *metricsFile != "" {
		if *exp == "" {
			fmt.Fprintln(os.Stderr, "evbench: -trace/-metrics need -exp (one experiment per export)")
			os.Exit(1)
		}
		bench.EnableTelemetry(telemetry.Options{
			TraceCap:     telemetry.DefaultTraceCap,
			SamplePeriod: telemetry.DefaultSamplePeriod,
		})
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	runOne := func(e bench.Experiment) {
		if *benchjson == "" {
			fmt.Println(e.Run().String())
			return
		}
		res, rep := bench.RunReport(e)
		fmt.Println(res.String())
		path, err := bench.WriteReport(*benchjson, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "evbench: wrote %s\n", path)
	}

	run := func() {
		if *exp != "" {
			e, ok := bench.Get(*exp)
			if !ok {
				fmt.Fprintf(os.Stderr, "evbench: unknown experiment %q (try -list)\n", *exp)
				os.Exit(1)
			}
			runOne(e)
			return
		}
		for _, e := range bench.All() {
			runOne(e)
		}
	}
	run()

	if *traceFile != "" {
		if err := bench.WriteTelemetryTrace(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "evbench: wrote %s\n", *traceFile)
	}
	if *metricsFile != "" {
		if err := bench.WriteTelemetryMetrics(*metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "evbench: wrote %s\n", *metricsFile)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %v\n", err)
			os.Exit(1)
		}
	}
}
