// Command evbench regenerates the paper's tables and figures from the
// simulator. With no flags it runs every experiment; -exp selects one.
//
//	evbench                 # run everything
//	evbench -exp table3     # just the Table 3 reproduction
//	evbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp != "" {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "evbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		fmt.Println(e.Run().String())
		return
	}
	for _, e := range bench.All() {
		fmt.Println(e.Run().String())
	}
}
