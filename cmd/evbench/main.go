// Command evbench regenerates the paper's tables and figures from the
// simulator. With no flags it runs every experiment; -exp selects one.
//
//	evbench                          # run everything
//	evbench -exp table3              # just the Table 3 reproduction
//	evbench -experiment resilience   # same flag, long spelling
//	evbench -list                    # list experiment ids
//	evbench -parallel 8              # 8 worker goroutines per experiment
//	evbench -domains 4               # split topologies across 4 partition domains
//	evbench -domains auto            # one domain per core, load-aware switch assignment
//	evbench -interp                  # run µP4 programs under the interpreter oracle
//	evbench -burst 0                 # per-packet datapath (burst differential oracle)
//	evbench -burst 128               # wider burst slot budget per pipeline wakeup
//	evbench -benchjson .             # also write BENCH_<id>.json per experiment
//	evbench -cpuprofile cpu.pprof    # write a CPU profile
//	evbench -memprofile mem.pprof    # write an allocation profile
//	evbench -exp hula -trace t.json -metrics m.json
//	                                 # telemetry: lifecycle trace + metrics export
//	evbench -exp scale -resume scale.journal
//	                                 # campaign resumption: completed trials are
//	                                 # journaled and skipped on the next run
//	evbench -exp scale -http 127.0.0.1:9100
//	                                 # live introspection: /metrics (Prometheus),
//	                                 # /status (JSON), /debug/pprof
//	evbench -exp hula -stream-trace live.jsonl -stream-metrics live-metrics.jsonl
//	                                 # stream telemetry to disk during the run
//	evbench -blockprofile b.pprof -mutexprofile m.pprof
//	                                 # runtime contention profiles
//
// The observability plane (-http, -stream-*) is read-only: tables, BENCH
// json digests, and trace/metrics exports are byte-identical with it on
// or off, at every -parallel and -domains setting.
//
// -trace writes the event-lifecycle trace (Chrome/Perfetto trace-event
// JSON, or JSON lines when the file ends in .jsonl); -metrics writes the
// metrics registry document. Both need -exp (one experiment per export)
// and work for the instrumented experiments (staleness, hula, scale).
//
// -resume names a trial journal (one per experiment): every completed
// trial is appended as it finishes, and a rerun after a crash loads the
// recorded results instead of recomputing them, producing byte-identical
// tables. It needs -exp and composes with -parallel/-domains; it does
// not compose with -trace/-metrics (telemetry is recorded while trials
// execute, so skipped trials would leave holes in the export).
//
// Output is identical for every -parallel and -domains value: trials are
// distributed across workers but result rows are emitted in trial order,
// and partitioned topologies execute byte-identically to single-threaded.
// That extends to telemetry: trace and metrics files are byte-identical
// at any -parallel and -domains setting.
//
// Exit codes: 0 on success, 1 on runtime failure (profile or export
// write errors), 2 on usage errors (unknown experiment, invalid flag
// combinations).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/p4"
	"repro/internal/telemetry"
	"repro/internal/telemetry/self"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("evbench", flag.ContinueOnError)
	fs.SetOutput(errw)
	exp := fs.String("exp", "", "experiment id to run (default: all)")
	fs.StringVar(exp, "experiment", "", "alias for -exp")
	list := fs.Bool("list", false, "list experiment ids and exit")
	par := fs.Int("parallel", bench.Parallelism(),
		"worker goroutines for experiment trials (0 = GOMAXPROCS)")
	domains := fs.String("domains", "",
		"partition domains for topology experiments (intra-trial parallelism): a count, or \"auto\" for one per core with load-aware switch assignment")
	benchjson := fs.String("benchjson", "",
		"write BENCH_<experiment>.json reports into `dir`")
	cpuprofile := fs.String("cpuprofile", "", "write CPU profile to `file`")
	memprofile := fs.String("memprofile", "", "write allocation profile to `file`")
	blockprofile := fs.String("blockprofile", "", "write goroutine blocking profile to `file`")
	mutexprofile := fs.String("mutexprofile", "", "write mutex contention profile to `file`")
	httpAddr := fs.String("http", "",
		"serve the introspection endpoint (/metrics, /status, /debug/pprof) on `addr`")
	streamTrace := fs.String("stream-trace", "",
		"stream trace records incrementally to `file` during the run (.json/.trace = Chrome array, else JSONL); needs -exp")
	streamMetrics := fs.String("stream-metrics", "",
		"stream one metrics-document line per flush to `file` during the run; needs -exp")
	streamEvery := fs.Duration("stream-every", 500*time.Millisecond,
		"wall-clock flush period for -stream-trace/-stream-metrics")
	traceFile := fs.String("trace", "",
		"write the event-lifecycle trace to `file` (.jsonl = JSON lines, else Chrome JSON); needs -exp")
	metricsFile := fs.String("metrics", "",
		"write the telemetry metrics document to `file`; needs -exp")
	interp := fs.Bool("interp", false,
		"execute µP4 programs with the interpreter instead of compiled closures (differential oracle)")
	burst := fs.Int("burst", -1,
		"burst slot budget per pipeline wakeup (0 = per-packet differential oracle, -1 = default)")
	resume := fs.String("resume", "",
		"journal completed trials in `file` and skip them on rerun; needs -exp")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Paper)
		}
		return exitOK
	}

	if *par <= 0 {
		*par = runtime.GOMAXPROCS(0)
	}
	bench.SetParallelism(*par)
	if *domains != "" {
		if err := bench.ParseDomains(*domains); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitUsage
		}
	}
	p4.ForceInterpret = *interp
	switch {
	case *burst == 0:
		core.ForceNoBurst = true
	case *burst > 0:
		core.DefaultBurstSlots = *burst
	}

	streaming := *streamTrace != "" || *streamMetrics != ""
	telemetryOn := *traceFile != "" || *metricsFile != "" || streaming
	if telemetryOn && *exp == "" {
		fmt.Fprintln(errw, "evbench: -trace/-metrics/-stream-* need -exp (one experiment per export)")
		return exitUsage
	}
	if *resume != "" && *exp == "" {
		fmt.Fprintln(errw, "evbench: -resume needs -exp (one experiment per journal)")
		return exitUsage
	}
	if *resume != "" && telemetryOn {
		fmt.Fprintln(errw, "evbench: -resume does not compose with -trace/-metrics (skipped trials record no telemetry)")
		return exitUsage
	}
	var todo []bench.Experiment
	if *exp != "" {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(errw, "evbench: unknown experiment %q (try -list)\n", *exp)
			return exitUsage
		}
		todo = []bench.Experiment{e}
	} else {
		todo = bench.All()
	}

	// The observability plane (self-metrics, live collectors, HTTP
	// endpoint, streaming sink) is observation-only: turning any of it on
	// never changes a byte of tables, digests, or trace files (pinned by
	// TestObsStreamingIdentical / TestObsSmoke).
	obsOn := *httpAddr != "" || streaming
	if obsOn {
		self.Enable()
	}
	if telemetryOn {
		bench.EnableTelemetry(telemetry.Options{
			TraceCap:     telemetry.DefaultTraceCap,
			SamplePeriod: telemetry.DefaultSamplePeriod,
			Live:         obsOn,
		})
	}

	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Serve(obs.Options{
			Addr: *httpAddr,
			Runs: bench.TelemetryRuns,
			Status: func() map[string]any {
				return map[string]any{
					"binary":   "evbench",
					"exp":      *exp,
					"parallel": *par,
					"pdomains": bench.DomainsLabel(),
				}
			},
		})
		if err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		defer srv.Close()
		fmt.Fprintf(errw, "evbench: introspection endpoint on http://%s\n", srv.Addr())
	}

	var sink *telemetry.StreamSink
	if streaming {
		var err error
		sink, err = telemetry.NewStreamSink(telemetry.StreamOptions{
			TracePath:   *streamTrace,
			MetricsPath: *streamMetrics,
			Interval:    *streamEvery,
		})
		if err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		bench.AttachStreamSink(sink)
		defer bench.AttachStreamSink(nil)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		defer pprof.StopCPUProfile()
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
	}

	if *resume != "" {
		j, err := bench.OpenJournal(*resume, *exp)
		if err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		bench.SetJournal(j)
		defer func() {
			bench.SetJournal(nil)
			if hits := j.Hits(); hits > 0 {
				fmt.Fprintf(errw, "evbench: %d trial(s) loaded from %s\n", hits, *resume)
			}
			j.Close()
		}()
	}

	runOne := func(e bench.Experiment) error {
		if *benchjson == "" {
			fmt.Fprintln(out, e.Run().String())
			return nil
		}
		res, rep := bench.RunReport(e)
		fmt.Fprintln(out, res.String())
		path, err := bench.WriteReport(*benchjson, rep)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "evbench: wrote %s\n", path)
		return nil
	}
	for _, e := range todo {
		if err := runOne(e); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
	}

	if sink != nil {
		// Final flush before the post-run exports, so the streamed files
		// cover every record and close cleanly (Chrome array terminator).
		if err := sink.Close(); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		if *streamTrace != "" {
			fmt.Fprintf(errw, "evbench: streamed %s\n", *streamTrace)
		}
		if *streamMetrics != "" {
			fmt.Fprintf(errw, "evbench: streamed %s\n", *streamMetrics)
		}
	}

	if *traceFile != "" {
		if err := bench.WriteTelemetryTrace(*traceFile); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		fmt.Fprintf(errw, "evbench: wrote %s\n", *traceFile)
	}
	if *metricsFile != "" {
		if err := bench.WriteTelemetryMetrics(*metricsFile); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		fmt.Fprintf(errw, "evbench: wrote %s\n", *metricsFile)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
		defer f.Close()
		// A final GC before the heap profile so the allocation picture
		// shows live retention, not garbage awaiting collection.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(errw, "evbench: %v\n", err)
			return exitRuntime
		}
	}
	if err := writeLookupProfile("block", *blockprofile); err != nil {
		fmt.Fprintf(errw, "evbench: %v\n", err)
		return exitRuntime
	}
	if err := writeLookupProfile("mutex", *mutexprofile); err != nil {
		fmt.Fprintf(errw, "evbench: %v\n", err)
		return exitRuntime
	}
	return exitOK
}

// writeLookupProfile writes a named runtime profile (block, mutex) to
// path; a no-op when path is empty.
func writeLookupProfile(name, path string) error {
	if path == "" {
		return nil
	}
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.WriteTo(f, 0)
}
