package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry/self"
)

// syncBuffer lets the test read evbench's stderr while the run goroutine
// is still writing to it (the introspection address is printed mid-run).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var (
	stallRe    = regexp.MustCompile(`ev_self_domain[0-9]+_barrier_stall_ns [1-9]`)
	burstOccRe = regexp.MustCompile(`ev_self_burst_slots_per_dispatch_count [1-9]`)
)

// TestObsSmoke drives the full observability plane end to end, hermetic
// in-process: run the scale experiment with -http on an ephemeral port
// plus streaming, scrape /metrics live while trials execute until the
// barrier-stall and burst-occupancy self-metrics go non-zero, and then
// check the table output is byte-identical to a plain run. This is the
// cmd-level counterpart of bench.TestObsStreamingIdentical and the test
// behind `make obs-smoke`.
func TestObsSmoke(t *testing.T) {
	defer func() {
		self.Disable()
		self.Reset()
	}()

	base := []string{"-exp", "scale", "-parallel", "8", "-domains", "2"}
	var plain bytes.Buffer
	if code := run(base, &plain, io.Discard); code != exitOK {
		t.Fatalf("plain run exited %d", code)
	}

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "live.jsonl")
	metricsPath := filepath.Join(dir, "live-metrics.jsonl")
	args := append(append([]string{}, base...),
		"-http", "127.0.0.1:0",
		"-stream-trace", tracePath,
		"-stream-metrics", metricsPath,
		"-stream-every", "20ms")

	var obsOut bytes.Buffer
	var errw syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(args, &obsOut, &errw) }()

	// The bound address is printed to stderr before the experiment starts.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no introspection address in stderr:\n%s", errw.String())
		}
		if s := errw.String(); strings.Contains(s, "endpoint on http://") {
			s = s[strings.Index(s, "endpoint on http://")+len("endpoint on http://"):]
			addr = strings.TrimSpace(strings.SplitN(s, "\n", 2)[0])
		} else {
			time.Sleep(time.Millisecond)
		}
	}

	// Scrape live until the partition barrier-stall and burst-occupancy
	// self-metrics are non-zero: proof the engine is exporting real
	// signal mid-run, not a post-hoc summary.
	var lastBody string
	sawStall, sawBurst := false, false
	running := true
	code := -1
	for running && !(sawStall && sawBurst) {
		select {
		case code = <-done:
			running = false
		default:
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			if !running {
				break
			}
			time.Sleep(time.Millisecond)
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		lastBody = string(b)
		sawStall = sawStall || stallRe.MatchString(lastBody)
		sawBurst = sawBurst || burstOccRe.MatchString(lastBody)
	}
	if running {
		code = <-done
	}
	if code != exitOK {
		t.Fatalf("obs run exited %d, stderr:\n%s", code, errw.String())
	}
	if !sawStall {
		t.Errorf("no live scrape saw a non-zero barrier-stall self-metric; last scrape:\n%s", firstLines(lastBody, 40))
	}
	if !sawBurst {
		t.Errorf("no live scrape saw a non-zero burst-occupancy count; last scrape:\n%s", firstLines(lastBody, 40))
	}
	if lastBody == "" {
		t.Error("never completed a live /metrics scrape")
	}

	if !bytes.Equal(plain.Bytes(), obsOut.Bytes()) {
		t.Errorf("table output differs with observability plane on:\n--- plain ---\n%s\n--- obs ---\n%s",
			plain.String(), obsOut.String())
	}
	for _, p := range []string{tracePath, metricsPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("streamed file missing: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("streamed file %s is empty", p)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
