package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const jsonlBody = `{"run":"a","stream":"s0","ts_ps":100,"stage":"gen","kind":"IngressPacket","seq":1,"arg":0}
{"run":"a","stream":"s0","ts_ps":200,"stage":"slot","kind":"IngressPacket","outcome":"injected","seq":2,"arg":0}
{"run":"b","stream":"s0","ts_ps":50,"stage":"commit","kind":"BufferEnqueue","outcome":"stored","seq":1,"arg":64}
`

func check(t *testing.T, fn func(io.Writer, string) error, path string) string {
	t.Helper()
	var sb strings.Builder
	if err := fn(&sb, path); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return sb.String()
}

func TestJSONLCleanAndTorn(t *testing.T) {
	clean := writeFile(t, "t.jsonl", jsonlBody)
	if got := check(t, checkJSONL, clean); !strings.Contains(got, "3 records, 2 streams") ||
		strings.Contains(got, "truncated") {
		t.Errorf("clean summary: %q", got)
	}

	// Cut mid-record with no trailing newline: the torn tail is tolerated
	// and flagged, everything before it still validated.
	torn := writeFile(t, "torn.jsonl", jsonlBody+`{"run":"a","stream":"s0","ts_ps":300,"st`)
	if got := check(t, checkJSONL, torn); !strings.Contains(got, "3 records") ||
		!strings.Contains(got, "truncated tail tolerated") {
		t.Errorf("torn summary: %q", got)
	}

	// Mid-file garbage is still an error, not a tolerated tear.
	bad := writeFile(t, "bad.jsonl", `{"run":"a","stream":"s0","ts_ps":100,"st`+"\n"+jsonlBody)
	if err := checkJSONL(io.Discard, bad); err == nil {
		t.Error("mid-file garbage not rejected")
	}

	// Non-monotone timestamps within a stream are still an error.
	mono := writeFile(t, "mono.jsonl", jsonlBody+
		`{"run":"a","stream":"s0","ts_ps":150,"stage":"gen","kind":"IngressPacket","seq":3,"arg":0}`+"\n")
	if err := checkJSONL(io.Discard, mono); err == nil {
		t.Error("non-monotone stream not rejected")
	}
}

const chromeEvents = `{"name":"gen:IngressPacket","ph":"i","ts":0.1,"pid":0,"tid":1,"s":"t"},
{"name":"slot:IngressPacket","ph":"i","ts":0.2,"pid":0,"tid":1,"s":"t"},
{"name":"gen:IngressPacket","ph":"i","ts":0.05,"pid":1,"tid":1,"s":"t"}`

func TestChromeCleanAndTorn(t *testing.T) {
	clean := writeFile(t, "t.json", "[\n"+chromeEvents+"\n]\n")
	if got := check(t, checkChrome, clean); !strings.Contains(got, "3 instant events") ||
		strings.Contains(got, "truncated") {
		t.Errorf("clean summary: %q", got)
	}

	// A streamed array cut before the closing bracket (killed run).
	unclosed := writeFile(t, "unclosed.json", "[\n"+chromeEvents)
	if got := check(t, checkChrome, unclosed); !strings.Contains(got, "3 instant events") ||
		!strings.Contains(got, "truncated tail tolerated") {
		t.Errorf("unclosed summary: %q", got)
	}

	// Cut mid-event: the partial event is dropped, the rest validated.
	midEvent := writeFile(t, "mid.json", "[\n"+chromeEvents+",\n{\"name\":\"gen:Ing")
	if got := check(t, checkChrome, midEvent); !strings.Contains(got, "3 instant events") ||
		!strings.Contains(got, "truncated tail tolerated") {
		t.Errorf("mid-event summary: %q", got)
	}

	// Same-tid streams in different pids are independent for the
	// monotonicity check (streamed sinks namespace collectors by pid),
	// but a reversal inside one (pid, tid) is still an error.
	rev := writeFile(t, "rev.json",
		"[\n"+chromeEvents+",\n{\"name\":\"gen:IngressPacket\",\"ph\":\"i\",\"ts\":0.15,\"pid\":0,\"tid\":1,\"s\":\"t\"}\n]\n")
	if err := checkChrome(io.Discard, rev); err == nil {
		t.Error("non-monotone chrome stream not rejected")
	}
}

const metricsLine = `{"schema":"evbench-metrics/v1","runs":[{"label":"t0","metrics":[` +
	`{"name":"sw.cycles","type":"counter","value":7},` +
	`{"name":"sw.lag","type":"histogram","count":3,"sum":9,"max":4,` +
	`"buckets":[{"Low":0,"High":0,"Count":1},{"Low":3,"High":4,"Count":2}]}]}]}`

func TestMetricsSingleAndStreamed(t *testing.T) {
	// Post-run layout: one indented document, strict checks.
	single := writeFile(t, "m.json",
		"{\n  \"schema\": \"evbench-metrics/v1\",\n  \"runs\": [\n    {\n      \"label\": \"t0\",\n      \"metrics\": []\n    }\n  ]\n}\n")
	if got := check(t, checkMetrics, single); !strings.Contains(got, "1 runs") {
		t.Errorf("single summary: %q", got)
	}

	// Streamed layout: one compact document per flush.
	streamed := writeFile(t, "live.jsonl", metricsLine+"\n"+metricsLine+"\n")
	if got := check(t, checkMetrics, streamed); !strings.Contains(got, "2 snapshots") ||
		strings.Contains(got, "truncated") {
		t.Errorf("streamed summary: %q", got)
	}

	// Torn final snapshot line.
	torn := writeFile(t, "torn.jsonl", metricsLine+"\n"+metricsLine[:40])
	if got := check(t, checkMetrics, torn); !strings.Contains(got, "1 snapshots") ||
		!strings.Contains(got, "truncated tail tolerated") {
		t.Errorf("torn summary: %q", got)
	}

	// A live snapshot can catch max behind its bucket (the watermark
	// races the bucket increment): tolerated for streamed lines only.
	racyMax := strings.Replace(metricsLine, `"max":4`, `"max":9`, 1)
	if err := checkMetrics(io.Discard, writeFile(t, "racy.jsonl", racyMax+"\n"+racyMax+"\n")); err != nil {
		t.Errorf("streamed racy max rejected: %v", err)
	}

	// But a bucket-sum mismatch is corruption in either layout.
	badSum := strings.Replace(metricsLine, `"count":3`, `"count":5`, 1)
	if err := checkMetrics(io.Discard, writeFile(t, "badsum.jsonl", badSum+"\n"+badSum+"\n")); err == nil {
		t.Error("streamed bucket-sum mismatch not rejected")
	}
}
