// Command tracecheck validates telemetry export files so the Makefile's
// telemetry-smoke target needs no external JSON tooling.
//
//	tracecheck -trace t.json         # Chrome trace-event JSON
//	tracecheck -trace t.jsonl        # JSON-lines trace
//	tracecheck -metrics m.json       # evbench-metrics/v1 document
//	tracecheck -metrics live.jsonl   # streamed: one document line per flush
//
// Each file is parsed and schema-checked (required fields, known stage /
// outcome / metric-type vocabularies, monotone timestamps per stream); a
// one-line summary per valid file goes to stdout, problems to stderr with
// exit status 1.
//
// Incrementally streamed files (-stream-trace / -stream-metrics) are
// accepted too, including ones cut short by a crash: a torn final record
// — a truncated last JSONL line, an unterminated Chrome event array — is
// tolerated and reported as "truncated tail" in the summary rather than
// failing the file. Everything before the tear is still validated in
// full. Streamed metrics files hold one compact document per flush;
// their histogram snapshots are taken while writers run, so the
// max-in-top-bucket check (which only converges at quiescence) is
// relaxed for them while the bucket-sum invariant stays enforced.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

var stages = map[string]bool{
	"gen": true, "enqueue": true, "merge": true, "slot": true, "commit": true,
}

var outcomes = map[string]bool{
	"": true, "stored": true, "coalesced": true, "shed": true, "dropped": true,
	"piggyback": true, "injected": true,
}

var metricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
}

func main() {
	traceFile := flag.String("trace", "", "trace `file` to validate (.jsonl = JSON lines, else Chrome JSON)")
	metricsFile := flag.String("metrics", "", "metrics document `file` to validate")
	flag.Parse()

	if *traceFile == "" && *metricsFile == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to do (need -trace and/or -metrics)")
		os.Exit(2)
	}
	ok := true
	if *traceFile != "" {
		var err error
		if strings.HasSuffix(*traceFile, ".jsonl") {
			err = checkJSONL(os.Stdout, *traceFile)
		} else {
			err = checkChrome(os.Stdout, *traceFile)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *traceFile, err)
			ok = false
		}
	}
	if *metricsFile != "" {
		if err := checkMetrics(os.Stdout, *metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *metricsFile, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// tailNote renders the truncated flag for the summary line.
func tailNote(truncated bool) string {
	if truncated {
		return " (truncated tail tolerated)"
	}
	return ""
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// checkChrome validates a Chrome trace-event JSON array: metadata events
// name processes/threads, instant events carry a valid stage name and
// non-decreasing timestamps per (pid, tid). The events are decoded one
// at a time, so an incrementally streamed array whose writer died before
// the closing bracket — or mid-event — validates up to the tear.
func checkChrome(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<20))
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("not a JSON array of trace events: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("not a JSON array of trace events (starts with %v)", tok)
	}
	meta, instants := 0, 0
	truncated := false
	lastTs := map[[2]int]float64{}
	for i := 0; ; i++ {
		if !dec.More() {
			// A clean array closes with ']'; a streamed file cut short
			// just stops.
			if _, err := dec.Token(); err != nil {
				truncated = true
			}
			break
		}
		var ev chromeEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				truncated = true
				break
			}
			return fmt.Errorf("event %d: %w", i, err)
		}
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args["name"] == nil {
				return fmt.Errorf("event %d: metadata without args.name", i)
			}
		case "i":
			instants++
			stage, _, _ := strings.Cut(ev.Name, ":")
			if !stages[stage] {
				return fmt.Errorf("event %d: unknown stage %q", i, ev.Name)
			}
			if ev.Ts < 0 {
				return fmt.Errorf("event %d: negative timestamp", i)
			}
			key := [2]int{ev.Pid, ev.Tid}
			if ev.Ts < lastTs[key] {
				return fmt.Errorf("event %d: timestamps not monotone within stream pid=%d tid=%d", i, ev.Pid, ev.Tid)
			}
			lastTs[key] = ev.Ts
		default:
			return fmt.Errorf("event %d: unexpected ph %q", i, ev.Ph)
		}
	}
	fmt.Fprintf(out, "tracecheck: %s ok: %d instant events, %d metadata, %d streams%s\n",
		path, instants, meta, len(lastTs), tailNote(truncated))
	return nil
}

// checkJSONL validates a JSON-lines trace: every line an object with
// run/stream/stage, known stage and outcome names, monotone ts_ps per
// (run, stream). A final line with no terminating newline that fails to
// parse is a torn tail from an interrupted streamed run — tolerated.
func checkJSONL(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	n := 0
	truncated := false
	lastTs := map[string]int64{}
	for {
		line, err := r.ReadString('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return err
		}
		if strings.TrimSpace(line) == "" {
			if atEOF {
				break
			}
			continue
		}
		n++
		var rec struct {
			Run     string `json:"run"`
			Stream  string `json:"stream"`
			TsPs    int64  `json:"ts_ps"`
			Stage   string `json:"stage"`
			Kind    string `json:"kind"`
			Outcome string `json:"outcome"`
		}
		if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil {
			if atEOF {
				// Unterminated final line: torn tail from a live stream.
				n--
				truncated = true
				break
			}
			return fmt.Errorf("line %d: %w", n, jerr)
		}
		if rec.Run == "" || rec.Stream == "" {
			return fmt.Errorf("line %d: missing run/stream", n)
		}
		if !stages[rec.Stage] {
			return fmt.Errorf("line %d: unknown stage %q", n, rec.Stage)
		}
		if !outcomes[rec.Outcome] {
			return fmt.Errorf("line %d: unknown outcome %q", n, rec.Outcome)
		}
		key := rec.Run + "\x00" + rec.Stream
		if rec.TsPs < lastTs[key] {
			return fmt.Errorf("line %d: ts_ps not monotone within stream %s/%s", n, rec.Run, rec.Stream)
		}
		lastTs[key] = rec.TsPs
		if atEOF {
			break
		}
	}
	fmt.Fprintf(out, "tracecheck: %s ok: %d records, %d streams%s\n",
		path, n, len(lastTs), tailNote(truncated))
	return nil
}

type metricsDoc struct {
	Schema string `json:"schema"`
	Runs   []struct {
		Label   string `json:"label"`
		Metrics []struct {
			Name    string `json:"name"`
			Type    string `json:"type"`
			Count   uint64 `json:"count"`
			Max     uint64 `json:"max"`
			Buckets []struct {
				Low, High, Count uint64
			} `json:"buckets"`
		} `json:"metrics"`
	} `json:"runs"`
}

// validateMetricsDoc schema-checks one document and returns the metric
// count. Streamed documents are snapshotted while writers run: bucket
// counts and the derived total stay consistent (the snapshot sums the
// buckets), but the max watermark races its bucket by design, so the
// max-in-top-bucket check only applies to quiescent (post-run) docs.
func validateMetricsDoc(doc *metricsDoc, streamed bool) (int, error) {
	if doc.Schema != "evbench-metrics/v1" {
		return 0, fmt.Errorf("unexpected schema %q", doc.Schema)
	}
	total := 0
	for _, run := range doc.Runs {
		if run.Label == "" {
			return 0, fmt.Errorf("run without label")
		}
		prev := ""
		prevType := ""
		for _, m := range run.Metrics {
			total++
			if m.Name == "" || !metricTypes[m.Type] {
				return 0, fmt.Errorf("run %s: bad metric %q type %q", run.Label, m.Name, m.Type)
			}
			if m.Name < prev || (m.Name == prev && m.Type <= prevType) {
				return 0, fmt.Errorf("run %s: metrics not in sorted order at %q", run.Label, m.Name)
			}
			prev, prevType = m.Name, m.Type
			if m.Type == "histogram" {
				var inBuckets uint64
				for _, b := range m.Buckets {
					if b.Low > b.High {
						return 0, fmt.Errorf("run %s: metric %s: inverted bucket", run.Label, m.Name)
					}
					inBuckets += b.Count
				}
				if inBuckets != m.Count {
					return 0, fmt.Errorf("run %s: metric %s: bucket counts %d != count %d",
						run.Label, m.Name, inBuckets, m.Count)
				}
				if !streamed && len(m.Buckets) > 0 {
					last := m.Buckets[len(m.Buckets)-1]
					if m.Max < last.Low || m.Max > last.High {
						return 0, fmt.Errorf("run %s: metric %s: max %d outside top bucket [%d,%d]",
							run.Label, m.Name, m.Max, last.Low, last.High)
					}
				}
			}
		}
	}
	return total, nil
}

// checkMetrics validates an evbench-metrics/v1 document. Two layouts are
// accepted: the post-run export (one indented document spanning the whole
// file, checked strictly) and the streamed form (one compact document per
// line, one line per flush, torn final line tolerated).
func checkMetrics(out io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc metricsDoc
	if err := json.Unmarshal(data, &doc); err == nil {
		total, err := validateMetricsDoc(&doc, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "tracecheck: %s ok: %d runs, %d metrics\n", path, len(doc.Runs), total)
		return nil
	}
	// Streamed layout: one compact document line per flush.
	lines := strings.Split(string(data), "\n")
	torn := len(data) > 0 && data[len(data)-1] != '\n'
	docs, total := 0, 0
	truncated := false
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var d metricsDoc
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			if torn && i == len(lines)-1 {
				truncated = true
				break
			}
			return fmt.Errorf("snapshot line %d: %w", i+1, err)
		}
		n, err := validateMetricsDoc(&d, true)
		if err != nil {
			return fmt.Errorf("snapshot line %d: %w", i+1, err)
		}
		docs++
		total += n
	}
	if docs == 0 && !truncated {
		return fmt.Errorf("no metrics documents")
	}
	fmt.Fprintf(out, "tracecheck: %s ok: %d snapshots, %d metrics%s\n",
		path, docs, total, tailNote(truncated))
	return nil
}
