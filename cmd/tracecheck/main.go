// Command tracecheck validates telemetry export files so the Makefile's
// telemetry-smoke target needs no external JSON tooling.
//
//	tracecheck -trace t.json         # Chrome trace-event JSON
//	tracecheck -trace t.jsonl        # JSON-lines trace
//	tracecheck -metrics m.json       # evbench-metrics/v1 document
//
// Each file is parsed and schema-checked (required fields, known stage /
// outcome / metric-type vocabularies, monotone timestamps per stream); a
// one-line summary per valid file goes to stdout, problems to stderr with
// exit status 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

var stages = map[string]bool{
	"gen": true, "enqueue": true, "merge": true, "slot": true, "commit": true,
}

var outcomes = map[string]bool{
	"": true, "stored": true, "coalesced": true, "shed": true, "dropped": true,
	"piggyback": true, "injected": true,
}

var metricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
}

func main() {
	traceFile := flag.String("trace", "", "trace `file` to validate (.jsonl = JSON lines, else Chrome JSON)")
	metricsFile := flag.String("metrics", "", "metrics document `file` to validate")
	flag.Parse()

	if *traceFile == "" && *metricsFile == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to do (need -trace and/or -metrics)")
		os.Exit(2)
	}
	ok := true
	if *traceFile != "" {
		var err error
		if strings.HasSuffix(*traceFile, ".jsonl") {
			err = checkJSONL(*traceFile)
		} else {
			err = checkChrome(*traceFile)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *traceFile, err)
			ok = false
		}
	}
	if *metricsFile != "" {
		if err := checkMetrics(*metricsFile); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *metricsFile, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// checkChrome validates a Chrome trace-event JSON array: metadata events
// name processes/threads, instant events carry a valid stage name and
// non-decreasing timestamps per (pid, tid).
func checkChrome(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var evs []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		return fmt.Errorf("not a JSON array of trace events: %w", err)
	}
	meta, instants := 0, 0
	lastTs := map[[2]int]float64{}
	for i, ev := range evs {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args["name"] == nil {
				return fmt.Errorf("event %d: metadata without args.name", i)
			}
		case "i":
			instants++
			stage, _, _ := strings.Cut(ev.Name, ":")
			if !stages[stage] {
				return fmt.Errorf("event %d: unknown stage %q", i, ev.Name)
			}
			if ev.Ts < 0 {
				return fmt.Errorf("event %d: negative timestamp", i)
			}
			key := [2]int{ev.Pid, ev.Tid}
			if ev.Ts < lastTs[key] {
				return fmt.Errorf("event %d: timestamps not monotone within stream pid=%d tid=%d", i, ev.Pid, ev.Tid)
			}
			lastTs[key] = ev.Ts
		default:
			return fmt.Errorf("event %d: unexpected ph %q", i, ev.Ph)
		}
	}
	fmt.Printf("tracecheck: %s ok: %d instant events, %d metadata, %d streams\n",
		path, instants, meta, len(lastTs))
	return nil
}

// checkJSONL validates a JSON-lines trace: every line an object with
// run/stream/stage, known stage and outcome names, monotone ts_ps per
// (run, stream).
func checkJSONL(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	lastTs := map[string]int64{}
	for sc.Scan() {
		n++
		var rec struct {
			Run     string `json:"run"`
			Stream  string `json:"stream"`
			TsPs    int64  `json:"ts_ps"`
			Stage   string `json:"stage"`
			Kind    string `json:"kind"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
		if rec.Run == "" || rec.Stream == "" {
			return fmt.Errorf("line %d: missing run/stream", n)
		}
		if !stages[rec.Stage] {
			return fmt.Errorf("line %d: unknown stage %q", n, rec.Stage)
		}
		if !outcomes[rec.Outcome] {
			return fmt.Errorf("line %d: unknown outcome %q", n, rec.Outcome)
		}
		key := rec.Run + "\x00" + rec.Stream
		if rec.TsPs < lastTs[key] {
			return fmt.Errorf("line %d: ts_ps not monotone within stream %s/%s", n, rec.Run, rec.Stream)
		}
		lastTs[key] = rec.TsPs
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("tracecheck: %s ok: %d records, %d streams\n", path, n, len(lastTs))
	return nil
}

// checkMetrics validates an evbench-metrics/v1 document: schema marker,
// per-run sorted metric names, known types, histogram bucket sanity.
func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Schema string `json:"schema"`
		Runs   []struct {
			Label   string `json:"label"`
			Metrics []struct {
				Name    string `json:"name"`
				Type    string `json:"type"`
				Count   uint64 `json:"count"`
				Max     uint64 `json:"max"`
				Buckets []struct {
					Low, High, Count uint64
				} `json:"buckets"`
			} `json:"metrics"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a metrics document: %w", err)
	}
	if doc.Schema != "evbench-metrics/v1" {
		return fmt.Errorf("unexpected schema %q", doc.Schema)
	}
	total := 0
	for _, run := range doc.Runs {
		if run.Label == "" {
			return fmt.Errorf("run without label")
		}
		prev := ""
		prevType := ""
		for _, m := range run.Metrics {
			total++
			if m.Name == "" || !metricTypes[m.Type] {
				return fmt.Errorf("run %s: bad metric %q type %q", run.Label, m.Name, m.Type)
			}
			if m.Name < prev || (m.Name == prev && m.Type <= prevType) {
				return fmt.Errorf("run %s: metrics not in sorted order at %q", run.Label, m.Name)
			}
			prev, prevType = m.Name, m.Type
			if m.Type == "histogram" {
				var inBuckets uint64
				for _, b := range m.Buckets {
					if b.Low > b.High {
						return fmt.Errorf("run %s: metric %s: inverted bucket", run.Label, m.Name)
					}
					inBuckets += b.Count
				}
				if inBuckets != m.Count {
					return fmt.Errorf("run %s: metric %s: bucket counts %d != count %d",
						run.Label, m.Name, inBuckets, m.Count)
				}
				if len(m.Buckets) > 0 {
					last := m.Buckets[len(m.Buckets)-1]
					if m.Max < last.Low || m.Max > last.High {
						return fmt.Errorf("run %s: metric %s: max %d outside top bucket [%d,%d]",
							run.Label, m.Name, m.Max, last.Low, last.High)
					}
				}
			}
		}
	}
	fmt.Printf("tracecheck: %s ok: %d runs, %d metrics\n", path, len(doc.Runs), total)
	return nil
}
