// Command benchdiff compares BENCH_<experiment>.json reports (see
// internal/bench.Report) and prints the malloc, allocated-bytes, wall-time
// and cycles-per-second deltas, so a perf change can be judged in one
// glance. It takes one or more OLD NEW pairs:
//
//	benchdiff BENCH_scale.before.json BENCH_scale.json
//	benchdiff BENCH_scale.before.json BENCH_scale.json \
//	          BENCH_up4.before.json   BENCH_up4.json
//
// Below the aggregates it diffs the per-sample cycles-per-second rows,
// matched by (label, domains): rows present only in the new report (the
// burst-off oracle rows, for example) are listed as "new". Samples
// carrying a per_core_efficiency value (speedup over min(domains,
// num_cpu) usable cores) get an eff column, and a matched multi-domain
// row whose speedup fell below 0.7x of the old report's is a scaling
// regression: reported on stderr and exits non-zero.
//
// The deterministic experiment table embedded in each report is also
// compared: a perf optimization must not change a single cell, so a table
// mismatch is reported on stderr and exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func load(path string) *bench.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return &rep
}

// row prints one metric line: old, new, and the improvement factor in the
// direction where bigger is better (lowerIsBetter flips the ratio).
func row(name string, oldV, newV float64, unit string, lowerIsBetter bool) {
	ratio := 0.0
	switch {
	case lowerIsBetter && newV > 0:
		ratio = oldV / newV
	case !lowerIsBetter && oldV > 0:
		ratio = newV / oldV
	}
	arrow := "better"
	if ratio < 1 {
		arrow = "worse"
	}
	if ratio == 0 {
		fmt.Printf("%-14s %18s -> %-18s\n", name, fmtNum(oldV, unit), fmtNum(newV, unit))
		return
	}
	fmt.Printf("%-14s %18s -> %-18s %6.2fx %s\n",
		name, fmtNum(oldV, unit), fmtNum(newV, unit), ratio, arrow)
}

func fmtNum(v float64, unit string) string {
	if unit == "" && v == float64(uint64(v)) {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%.2f%s", v, unit)
}

// perfKey matches samples across reports. Multiple samples may share a
// key (repeated labels are taken in order of appearance).
type perfKey struct {
	label   string
	domains int
}

// speedupFloor is the matched-row scaling gate: a new speedup below this
// fraction of the old one fails the diff.
const speedupFloor = 0.7

// annotate renders a sample's scaling columns: per-core efficiency and,
// where recorded, the barrier reduction over classic fixed windows.
func annotate(p bench.PerfSample) string {
	s := ""
	if p.Efficiency > 0 {
		s += fmt.Sprintf("  eff=%.2f", p.Efficiency)
	}
	if p.BarrierReduction > 0 {
		s += fmt.Sprintf("  barriers=%.2fx", p.BarrierReduction)
	}
	return s
}

// diffPerf prints per-sample cycles-per-second deltas, matching new
// samples against old ones by (label, domains) occurrence order. It
// returns false when a matched multi-domain row's speedup regressed
// below speedupFloor of the old report's.
func diffPerf(oldRep, newRep *bench.Report) bool {
	ok := true
	if len(newRep.Perf) == 0 {
		return ok
	}
	oldByKey := make(map[perfKey][]bench.PerfSample)
	for _, p := range oldRep.Perf {
		k := perfKey{p.Label, p.Domains}
		oldByKey[k] = append(oldByKey[k], p)
	}
	for _, p := range newRep.Perf {
		k := perfKey{p.Label, p.Domains}
		name := fmt.Sprintf("  %s d%d", p.Label, p.Domains)
		if olds := oldByKey[k]; len(olds) > 0 {
			old := olds[0]
			row(name+annotate(p), old.CyclesPerSec, p.CyclesPerSec, "", false)
			if p.Domains > 1 && old.Speedup > 0 && p.Speedup > 0 && p.Speedup < speedupFloor*old.Speedup {
				fmt.Fprintf(os.Stderr,
					"benchdiff: SCALING REGRESSION: %s d%d speedup %.2fx -> %.2fx (below %.0f%% of old)\n",
					p.Label, p.Domains, old.Speedup, p.Speedup, 100*speedupFloor)
				ok = false
			}
			oldByKey[k] = olds[1:]
		} else {
			fmt.Printf("%-14s %18s -> %-18s (new)%s\n", name, "-", fmtNum(p.CyclesPerSec, ""), annotate(p))
		}
	}
	return ok
}

// diffPair compares one OLD/NEW report pair and reports whether the
// deterministic halves (table, telemetry digest) are unchanged.
func diffPair(oldPath, newPath string) bool {
	oldRep, newRep := load(oldPath), load(newPath)
	if oldRep.Experiment != newRep.Experiment {
		fmt.Fprintf(os.Stderr, "benchdiff: comparing different experiments: %q vs %q\n",
			oldRep.Experiment, newRep.Experiment)
	}
	fmt.Printf("experiment %s: %s -> %s\n", newRep.Experiment, oldPath, newPath)
	row("mallocs", float64(oldRep.Mallocs), float64(newRep.Mallocs), "", true)
	row("alloc_bytes", float64(oldRep.AllocBytes), float64(newRep.AllocBytes), "", true)
	row("wall_seconds", oldRep.WallSeconds, newRep.WallSeconds, "s", true)
	if oldRep.CyclesPerSec > 0 || newRep.CyclesPerSec > 0 {
		row("cycles_per_sec", oldRep.CyclesPerSec, newRep.CyclesPerSec, "", false)
	}
	ok := diffPerf(oldRep, newRep)
	if oldRep.Table != newRep.Table {
		fmt.Fprintln(os.Stderr, "benchdiff: DETERMINISTIC TABLE CHANGED — this is not a pure perf change")
		ok = false
	} else {
		fmt.Println("table: identical")
	}
	if oldRep.Telemetry != nil && newRep.Telemetry != nil {
		if oldRep.Telemetry.Digest != newRep.Telemetry.Digest {
			fmt.Fprintf(os.Stderr, "benchdiff: TELEMETRY DIGEST CHANGED: %s -> %s\n",
				oldRep.Telemetry.Digest, newRep.Telemetry.Digest)
			ok = false
		} else {
			fmt.Println("telemetry digest: identical")
		}
	}
	return ok
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json [OLD.json NEW.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 || flag.NArg()%2 != 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	for i := 0; i < flag.NArg(); i += 2 {
		if i > 0 {
			fmt.Println()
		}
		if !diffPair(flag.Arg(i), flag.Arg(i+1)) {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}
